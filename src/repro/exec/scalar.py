"""Sequential (F77) interpreter for MiniF.

Executes a program the way the paper's Sparc 2 reference runs: one
thread of control, ordinary loop semantics.  Execution events are
recorded into :class:`~repro.exec.counters.ExecutionCounters` so a
scalar machine model can price the run.

The interpreter is dynamically typed (ints, floats, bools,
:class:`~repro.exec.values.FArray`); whole-array assignments and array
sections are supported Fortran-90 style.
"""

from __future__ import annotations

import copy
from collections import deque

import numpy as np

from ..lang import ast
from ..lang.errors import InterpreterError, MiniFError
from ..lang.symbols import implicit_type
from ..reliability import (
    Budget,
    MachineSnapshot,
    TRACE_DEPTH,
    attach_snapshot,
    locate,
    snapshot_env,
)
from ..reliability.checkpoint import Checkpoint
from .counters import ExecutionCounters
from .intrinsics import call_intrinsic, coerce
from .ops import apply_binop, apply_unop, op_event_kind, value_event_kind
from .signals import (
    GotoSignal,
    LoopCycle,
    LoopExit,
    ReturnSignal,
    StopSignal,
)
from .values import FArray, as_bool_scalar, as_int_scalar


class ScalarInterpreter:
    """Tree-walking sequential interpreter.

    Args:
        source: Parsed program (may contain subroutines).
        externals: Mapping from subroutine name to a Python callable
            ``fn(interp, arg_exprs, arg_values, env)`` implementing it.
        counters: Event accumulator (created fresh when omitted).
        statement_hook: Optional callable ``hook(stmt, env)`` invoked
            before each executed statement — used by trace recorders.
        max_statements: Safety bound on executed statements (shorthand
            for a ``Budget(max_steps=...)``).
        budget: Execution guard; overrides ``max_statements``.
        fault_plan: Deterministic fault injection
            (:class:`~repro.reliability.FaultPlan`).
        checkpoint_every: Capture a restorable
            :class:`~repro.reliability.checkpoint.Checkpoint` every
            this many executed statements, checked before each
            top-level statement.  Captures are deferred while a CALL
            into MiniF code is on the stack — the interval may stretch
            by one call's duration.  ``None`` disables capture.
        checkpoint_sink: Callable receiving each captured checkpoint.
    """

    def __init__(
        self,
        source: ast.SourceFile,
        externals: dict | None = None,
        counters: ExecutionCounters | None = None,
        statement_hook=None,
        max_statements: int = 20_000_000,
        budget: Budget | None = None,
        fault_plan=None,
        checkpoint_every: int | None = None,
        checkpoint_sink=None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise InterpreterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.source = source
        self.externals = externals or {}
        self.counters = counters if counters is not None else ExecutionCounters(1)
        self.statement_hook = statement_hook
        self.max_statements = max_statements
        self.budget = budget if budget is not None else Budget(max_steps=max_statements)
        self.fault_plan = fault_plan
        self.checkpoint_every = checkpoint_every
        self.checkpoint_sink = checkpoint_sink
        self.executed_statements = 0
        self._meter = self.budget.meter()
        self._trace: deque = deque(maxlen=TRACE_DEPTH)
        self._env: dict = {}
        self._routines = {unit.name: unit for unit in source.units}
        # Checkpoint machinery: the control-path frame stack is only
        # maintained when capture or resume is active (``_frames`` is
        # None otherwise and every compound statement takes its
        # original fast path).
        self._frames: list | None = None
        self._resume: list | None = None
        self._call_depth = 0
        self._ckpt_next: int | None = None

    @classmethod
    def from_config(cls, source: ast.SourceFile, config) -> "ScalarInterpreter":
        """Construct from a :class:`~repro.runtime.BackendConfig`.

        The scalar interpreter has no machine width; ``config.nproc``
        is ignored.
        """
        kwargs = dict(
            externals=config.externals,
            counters=config.counters,
            budget=config.budget,
            fault_plan=config.fault_plan,
            checkpoint_every=config.checkpoint_every,
        )
        if config.max_instructions is not None:
            kwargs["max_statements"] = config.max_instructions
        return cls(source, **kwargs)

    def snapshot(self) -> MachineSnapshot:
        """The interpreter's state right now (for crash dumps)."""
        return MachineSnapshot(
            backend="scalar",
            pc=self.executed_statements,
            steps=self.executed_statements,
            mask=[True],
            mask_stack=[],
            env=snapshot_env(self._env),
            last_ops=list(self._trace),
        )

    # -- entry points -----------------------------------------------------------

    def run(
        self,
        routine_name: str | None = None,
        bindings: dict | None = None,
        resume_from: Checkpoint | None = None,
    ) -> dict:
        """Execute a routine (the main PROGRAM by default); return its env.

        Errors raised mid-run carry a :meth:`snapshot` of the machine.

        With ``resume_from``, ``bindings`` are ignored and execution
        continues from the checkpoint's statement: the resumed run's
        final environment, counters and crash dumps are bit-identical
        to an uninterrupted run's.  The checkpoint is not mutated and
        may seed any number of resumes.
        """
        routine = (
            self.source.main if routine_name is None else self._routines[routine_name]
        )
        env: dict = dict(bindings or {})
        self._env = env
        self._meter = self.budget.meter()
        if self.fault_plan is not None:
            try:
                self.fault_plan.check_backend("scalar")
            except MiniFError as error:
                raise attach_snapshot(error, self.snapshot())
        if resume_from is not None:
            env = self._restore(resume_from)
            self._env = env
        capturing = bool(self.checkpoint_every) and self.checkpoint_sink is not None
        if capturing:
            every = self.checkpoint_every
            self._ckpt_next = (self.executed_statements // every + 1) * every
        else:
            self._ckpt_next = None
        self._frames = [] if (capturing or resume_from is not None) else None
        try:
            self.exec_body(routine.body, env)
        except (ReturnSignal, StopSignal):
            pass
        except MiniFError as error:
            raise attach_snapshot(error, self.snapshot())
        finally:
            self._resume = None
            self._frames = None
            self._ckpt_next = None
        return env

    # -- checkpoint capture / resume ----------------------------------------------

    def _emit_checkpoint(self, env: dict) -> None:
        """Capture full state before the next top-level statement runs."""
        self.checkpoint_sink(
            Checkpoint(
                backend="scalar",
                step=self.executed_statements,
                pc=self.executed_statements,
                env=env,
                frames=[list(frame) for frame in self._frames],
                counters=self.counters.state_dict(),
                meter_steps=self._meter.steps,
                trace=list(self._trace),
                nproc=1,
            ).detach()
        )

    def _restore(self, ckpt: Checkpoint) -> dict:
        """Install a checkpoint's state; returns the restored env.

        The checkpoint's mutable state is deep-copied in, so the same
        checkpoint object can seed any number of resumed runs.
        """
        if ckpt.backend != "scalar":
            raise InterpreterError(
                f"cannot resume a {ckpt.backend!r} checkpoint on the "
                "scalar backend"
            )
        env, frames, trace = copy.deepcopy((ckpt.env, ckpt.frames, ckpt.trace))
        self.executed_statements = ckpt.step
        self.counters.load_state(ckpt.counters)
        self._meter.steps = ckpt.meter_steps
        self._trace = deque(trace, maxlen=TRACE_DEPTH)
        self._resume = [list(frame) for frame in frames]
        return env

    # -- statements --------------------------------------------------------------

    def exec_body(self, body: list[ast.Stmt], env: dict) -> None:
        """Execute a statement list, honoring GOTO to labels it contains."""
        labels = {
            stmt.label: index
            for index, stmt in enumerate(body)
            if stmt.label is not None
        }
        frames = self._frames
        if frames is None:
            pc = 0
            while pc < len(body):
                try:
                    self.exec_stmt(body[pc], env)
                except GotoSignal as signal:
                    if signal.target in labels:
                        pc = labels[signal.target]
                        continue
                    raise
                pc += 1
            return
        # Checkpoint-tracking path: maintain a ["body", pc] frame so a
        # capture inside any statement knows its position here, and
        # honor a pending resume path by descending into the recorded
        # statement instead of starting at pc 0.
        pc = 0
        reenter = False
        resume = self._resume
        if resume:
            head = resume.pop(0)
            if not (isinstance(head, (list, tuple)) and head and head[0] == "body"):
                raise InterpreterError(
                    "corrupt checkpoint control path (expected a body frame)"
                )
            pc = int(head[1])
            if not (0 <= pc < len(body)):
                raise InterpreterError(
                    "checkpoint control path does not fit this program"
                )
            reenter = bool(resume)
            if not reenter:
                self._resume = None  # innermost position reached
        frame = ["body", pc]
        frames.append(frame)
        try:
            while pc < len(body):
                frame[1] = pc
                try:
                    if reenter:
                        reenter = False
                        self._reenter_stmt(body[pc], env)
                    else:
                        self.exec_stmt(body[pc], env)
                except GotoSignal as signal:
                    if signal.target in labels:
                        pc = labels[signal.target]
                        continue
                    raise
                pc += 1
        finally:
            frames.pop()

    def _reenter_stmt(self, stmt: ast.Stmt, env: dict) -> None:
        """Continue a compound statement mid-flight from a resume frame.

        The statement's own accounting (its trace entry, budget tick,
        condition evaluation for the in-progress iteration) happened
        before the checkpoint was captured and lives in the restored
        counters — only the *remaining* work runs here.
        """
        head = self._resume.pop(0)
        kind = head[0] if isinstance(head, (list, tuple)) and head else None
        if kind == "do" and isinstance(stmt, ast.Do):
            self._run_do(
                stmt, env, int(head[1]), int(head[2]), int(head[3]), fresh=False
            )
        elif kind == "while" and isinstance(stmt, (ast.While, ast.DoWhile)):
            self._run_while(stmt, env, fresh=False)
        elif kind == "if" and isinstance(stmt, ast.If):
            self._run_branch(
                stmt.then_body if head[1] else stmt.else_body, env, "if", head[1]
            )
        elif kind == "where" and isinstance(stmt, ast.Where):
            self._run_branch(
                stmt.then_body if head[1] else stmt.else_body, env, "where", head[1]
            )
        elif kind == "forall" and isinstance(stmt, ast.Forall):
            self._run_forall(stmt, env, int(head[1]), int(head[2]), fresh=False)
        else:
            raise InterpreterError(
                f"checkpoint control path frame {kind!r} does not match "
                f"statement {type(stmt).__name__}"
            )

    def exec_stmt(self, stmt: ast.Stmt, env: dict) -> None:
        next_at = self._ckpt_next
        if (
            next_at is not None
            and self.executed_statements >= next_at
            and not self._call_depth
        ):
            self._emit_checkpoint(env)
            every = self.checkpoint_every
            self._ckpt_next = (self.executed_statements // every + 1) * every
        self.executed_statements += 1
        self._env = env
        self._meter.tick(stmt.loc)
        if self.fault_plan is not None:
            self.fault_plan.raise_op_fault(self.executed_statements, "scalar")
        self._trace.append(
            {
                "pc": self.executed_statements,
                "op": type(stmt).__name__,
                "line": stmt.loc.line or None,
            }
        )
        if self.statement_hook is not None:
            self.statement_hook(stmt, env)
        method = getattr(self, f"_exec_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise InterpreterError(
                f"statement {type(stmt).__name__} not supported here", stmt.loc
            )
        try:
            method(stmt, env)
        except MiniFError as error:
            # The innermost statement wins; outer re-wraps are no-ops.
            if not error.location.line:
                locate(error, stmt.loc)
            raise

    # individual statements ------------------------------------------------------

    def _exec_decl(self, stmt: ast.Decl, env: dict) -> None:
        for entity in stmt.entities:
            base = (
                stmt.base_type
                if stmt.base_type != "dimension"
                else implicit_type(entity.name)
            )
            if entity.dims:
                existing = env.get(entity.name)
                if isinstance(existing, FArray):
                    continue
                shape = tuple(
                    as_int_scalar(self.eval(d, env), f"extent of {entity.name}")
                    for d in entity.dims
                )
                array = FArray(entity.name, shape, base, fill=existing is None)
                if isinstance(existing, np.ndarray):
                    if existing.size != array.size:
                        raise InterpreterError(
                            f"binding for '{entity.name}' has {existing.size} "
                            f"elements, declared {array.size}",
                            stmt.loc,
                        )
                    array.data[...] = existing.reshape(array.shape)
                elif existing is not None:
                    array.data[...] = existing
                env[entity.name] = array

    def _exec_paramdecl(self, stmt: ast.ParamDecl, env: dict) -> None:
        for name, value in zip(stmt.names, stmt.values):
            env[name] = self.eval(value, env)

    def _exec_decomposition(self, stmt, env) -> None:
        pass

    def _exec_align(self, stmt, env) -> None:
        pass

    def _exec_distribute(self, stmt, env) -> None:
        pass

    def _exec_assign(self, stmt: ast.Assign, env: dict) -> None:
        value = self.eval(stmt.value, env)
        self.assign_to(stmt.target, value, env)

    def _exec_do(self, stmt: ast.Do, env: dict) -> None:
        lo = as_int_scalar(self.eval(stmt.lo, env), "DO lower bound")
        hi = as_int_scalar(self.eval(stmt.hi, env), "DO upper bound")
        stride = (
            as_int_scalar(self.eval(stmt.stride, env), "DO stride")
            if stmt.stride is not None
            else 1
        )
        if stride == 0:
            raise InterpreterError("DO stride is zero", stmt.loc)
        trips = max(0, (hi - lo + stride) // stride)
        env[stmt.var] = lo
        value = lo
        if self._frames is not None:
            self._run_do(stmt, env, value, trips, stride, fresh=True)
            return
        for _ in range(trips):
            env[stmt.var] = value
            self.counters.record("acu")
            try:
                self.exec_body(stmt.body, env)
            except LoopExit:
                break
            except LoopCycle:
                pass
            value += stride
        else:
            env[stmt.var] = value

    def _run_do(
        self, stmt: ast.Do, env: dict, value: int, trips_left: int,
        stride: int, fresh: bool,
    ) -> None:
        """Checkpoint-tracking DO loop: same semantics, explicit frame.

        ``fresh=False`` resumes the loop mid-flight: the current trip's
        control-variable store and ``acu`` event are already in the
        restored state, so only its (partially executed) body runs.
        """
        frames = self._frames
        frame = ["do", value, trips_left, stride]
        frames.append(frame)
        broke = False
        resumed = not fresh
        try:
            while trips_left > 0:
                frame[1] = value
                frame[2] = trips_left
                if resumed:
                    resumed = False
                else:
                    env[stmt.var] = value
                    self.counters.record("acu")
                try:
                    self.exec_body(stmt.body, env)
                except LoopExit:
                    broke = True
                    break
                except LoopCycle:
                    pass
                value += stride
                trips_left -= 1
        finally:
            frames.pop()
        if not broke:
            env[stmt.var] = value

    def _exec_dowhile(self, stmt: ast.DoWhile, env: dict) -> None:
        if self._frames is not None:
            self._run_while(stmt, env, fresh=True)
            return
        while True:
            cond = as_bool_scalar(self.eval(stmt.cond, env), "DO WHILE condition")
            self.counters.record("acu")
            if not cond:
                return
            try:
                self.exec_body(stmt.body, env)
            except LoopExit:
                return
            except LoopCycle:
                continue

    def _exec_while(self, stmt: ast.While, env: dict) -> None:
        if self._frames is not None:
            self._run_while(stmt, env, fresh=True)
            return
        while True:
            cond = as_bool_scalar(self.eval(stmt.cond, env), "WHILE condition")
            self.counters.record("acu")
            if not cond:
                return
            try:
                self.exec_body(stmt.body, env)
            except LoopExit:
                return
            except LoopCycle:
                continue

    def _run_while(self, stmt, env: dict, fresh: bool) -> None:
        """Checkpoint-tracking WHILE / DO WHILE loop (identical semantics).

        The frame carries no state: resuming re-enters the in-progress
        body (its condition was evaluated and recorded before capture),
        then falls back into the normal test-first iteration.
        """
        label = (
            "DO WHILE condition"
            if isinstance(stmt, ast.DoWhile)
            else "WHILE condition"
        )
        frames = self._frames
        frames.append(["while"])
        resumed = not fresh
        try:
            while True:
                if not resumed:
                    cond = as_bool_scalar(self.eval(stmt.cond, env), label)
                    self.counters.record("acu")
                    if not cond:
                        return
                resumed = False
                try:
                    self.exec_body(stmt.body, env)
                except LoopExit:
                    return
                except LoopCycle:
                    continue
        finally:
            frames.pop()

    def _exec_if(self, stmt: ast.If, env: dict) -> None:
        cond = as_bool_scalar(self.eval(stmt.cond, env), "IF condition")
        self.counters.record("acu")
        if self._frames is not None:
            self._run_branch(
                stmt.then_body if cond else stmt.else_body, env, "if", cond
            )
            return
        if cond:
            self.exec_body(stmt.then_body, env)
        else:
            self.exec_body(stmt.else_body, env)

    def _exec_where(self, stmt: ast.Where, env: dict) -> None:
        # In sequential execution a WHERE behaves like an IF over the
        # (scalar or uniform) mask.
        mask = self.eval(stmt.mask, env)
        self.counters.record("mask")
        taken = as_bool_scalar(mask, "WHERE mask")
        if self._frames is not None:
            self._run_branch(
                stmt.then_body if taken else stmt.else_body, env, "where", taken
            )
            return
        if taken:
            self.exec_body(stmt.then_body, env)
        else:
            self.exec_body(stmt.else_body, env)

    def _run_branch(self, body: list, env: dict, kind: str, taken) -> None:
        """Checkpoint-tracking IF/WHERE arm: record which way we went."""
        frames = self._frames
        frames.append([kind, bool(taken)])
        try:
            self.exec_body(body, env)
        finally:
            frames.pop()

    def _exec_forall(self, stmt: ast.Forall, env: dict) -> None:
        lo = as_int_scalar(self.eval(stmt.lo, env), "FORALL lower bound")
        hi = as_int_scalar(self.eval(stmt.hi, env), "FORALL upper bound")
        if self._frames is not None:
            self._run_forall(stmt, env, lo, hi, fresh=True)
            return
        for value in range(lo, hi + 1):
            env[stmt.var] = value
            if stmt.mask is not None and not as_bool_scalar(
                self.eval(stmt.mask, env), "FORALL mask"
            ):
                continue
            self.exec_body(stmt.body, env)

    def _run_forall(
        self, stmt: ast.Forall, env: dict, value: int, hi: int, fresh: bool
    ) -> None:
        """Checkpoint-tracking FORALL: same semantics, explicit frame."""
        frames = self._frames
        frame = ["forall", value, hi]
        frames.append(frame)
        resumed = not fresh
        try:
            while value <= hi:
                frame[1] = value
                if resumed:
                    resumed = False
                else:
                    env[stmt.var] = value
                    if stmt.mask is not None and not as_bool_scalar(
                        self.eval(stmt.mask, env), "FORALL mask"
                    ):
                        value += 1
                        continue
                self.exec_body(stmt.body, env)
                value += 1
        finally:
            frames.pop()

    def _exec_goto(self, stmt: ast.Goto, env: dict) -> None:
        self.counters.record("acu")
        raise GotoSignal(stmt.target)

    def _exec_continue(self, stmt, env) -> None:
        pass

    def _exec_exitstmt(self, stmt, env) -> None:
        raise LoopExit()

    def _exec_cyclestmt(self, stmt, env) -> None:
        raise LoopCycle()

    def _exec_return(self, stmt, env) -> None:
        raise ReturnSignal()

    def _exec_stop(self, stmt, env) -> None:
        raise StopSignal()

    def _exec_callstmt(self, stmt: ast.CallStmt, env: dict) -> None:
        external = self.externals.get(stmt.name)
        if external is not None:
            # Output arguments may be unset before the call — pass None.
            args = [
                env.get(arg.name)
                if isinstance(arg, ast.Var) and arg.name not in env
                else self.eval(arg, env)
                for arg in stmt.args
            ]
            self.counters.record_call(stmt.name)
            self._call_depth += 1
            try:
                external(self, stmt.args, args, env)
            finally:
                self._call_depth -= 1
            return
        routine = self._routines.get(stmt.name)
        if routine is None:
            raise InterpreterError(f"CALL to unknown subroutine '{stmt.name}'", stmt.loc)
        if len(routine.params) != len(stmt.args):
            raise InterpreterError(
                f"CALL {stmt.name}: arity mismatch", stmt.loc
            )
        self.counters.record("acu")
        callee_env: dict = {}
        writeback: list[tuple[str, ast.Expr]] = []
        for param, arg in zip(routine.params, stmt.args):
            value = self.eval(arg, env)
            callee_env[param] = value
            if not isinstance(value, FArray) and isinstance(
                arg, (ast.Var, ast.ArrayRef)
            ):
                writeback.append((param, arg))
        self._call_depth += 1
        try:
            self.exec_body(routine.body, callee_env)
        except ReturnSignal:
            pass
        finally:
            self._call_depth -= 1
        for param, arg in writeback:
            self.assign_to(arg, callee_env[param], env)

    # -- assignment ----------------------------------------------------------------

    def assign_to(self, target: ast.Expr, value, env: dict) -> None:
        """Store ``value`` into a Var or ArrayRef target."""
        self.counters.record("store")
        if isinstance(target, ast.Var):
            existing = env.get(target.name)
            if isinstance(existing, FArray):
                existing.data[...] = coerce(value)
            else:
                env[target.name] = self._scalarize(value)
            return
        if isinstance(target, ast.ArrayRef):
            array = env.get(target.name)
            if not isinstance(array, FArray):
                raise InterpreterError(
                    f"'{target.name}' is not an array", target.loc
                )
            index = array.np_index([self._eval_subscript(s, env) for s in target.subs])
            array.data[index] = coerce(value)
            return
        raise InterpreterError("invalid assignment target", target.loc)

    @staticmethod
    def _scalarize(value):
        if isinstance(value, np.ndarray) and value.ndim == 0:
            return value.item()
        if isinstance(value, np.generic):
            return value.item()
        return value

    # -- expressions -----------------------------------------------------------------

    def eval(self, expr: ast.Expr, env: dict):
        """Evaluate an expression to a runtime value."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name not in env:
                raise InterpreterError(f"'{expr.name}' used before assignment", expr.loc)
            return env[expr.name]
        if isinstance(expr, ast.ArrayRef):
            return self._eval_arrayref(expr, env)
        if isinstance(expr, ast.Call):
            args = [self.eval(arg, env) for arg in expr.args]
            self.counters.record("reduce" if len(args) == 1 else "int_op")
            return call_intrinsic(expr.name, args)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            result = apply_binop(expr.op, left, right)
            self.counters.record(op_event_kind(expr.op, result))
            return self._scalarize(result)
        if isinstance(expr, ast.UnOp):
            operand = self.eval(expr.operand, env)
            result = apply_unop(expr.op, operand)
            self.counters.record(op_event_kind(expr.op, result))
            return self._scalarize(result)
        if isinstance(expr, ast.VectorLit):
            return np.array([self.eval(item, env) for item in expr.items])
        if isinstance(expr, ast.RangeVec):
            lo = as_int_scalar(self.eval(expr.lo, env), "range lower bound")
            hi = as_int_scalar(self.eval(expr.hi, env), "range upper bound")
            return np.arange(lo, hi + 1, dtype=np.int64)
        raise InterpreterError(
            f"cannot evaluate {type(expr).__name__} here", expr.loc
        )

    def _eval_subscript(self, sub: ast.Expr, env: dict):
        if isinstance(sub, ast.Slice):
            lo = (
                as_int_scalar(self.eval(sub.lo, env), "section lower bound")
                if sub.lo is not None
                else 1
            )
            hi = self.eval(sub.hi, env) if sub.hi is not None else None
            hi_int = as_int_scalar(hi, "section upper bound") if hi is not None else None
            return slice(lo - 1, hi_int)
        value = self.eval(sub, env)
        if isinstance(value, np.ndarray):
            return value
        return as_int_scalar(value, "subscript")

    def _eval_arrayref(self, expr: ast.ArrayRef, env: dict):
        array = env.get(expr.name)
        if isinstance(array, FArray):
            index = array.np_index([self._eval_subscript(s, env) for s in expr.subs])
            result = array.data[index]
            if isinstance(result, np.ndarray):
                return result.copy()
            return self._scalarize(result)
        if isinstance(array, np.ndarray):
            subs = [self._eval_subscript(s, env) for s in expr.subs]
            if len(subs) != array.ndim:
                raise InterpreterError(
                    f"'{expr.name}' subscript rank mismatch", expr.loc
                )
            index = tuple(
                s if isinstance(s, slice) else np.asarray(s) - 1 for s in subs
            )
            result = array[index]
            if isinstance(result, np.ndarray) and result.ndim == 0:
                return result.item()
            return result
        raise InterpreterError(f"'{expr.name}' is not an array", expr.loc)


def run_program(
    source: ast.SourceFile,
    bindings: dict | None = None,
    externals: dict | None = None,
    statement_hook=None,
):
    """Run a program sequentially; unpacks as ``(final env, counters)``.

    .. deprecated::
        Use :func:`repro.run` (``repro.run(source, backend="scalar")``)
        or an explicit :class:`repro.Engine`.  This shim will be
        removed in version 2.0.
    """
    import warnings

    warnings.warn(
        "run_program() is deprecated; use repro.run(source, backend='scalar') "
        "or Engine.compile(...).run(...) — removal planned for 2.0",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..runtime.engine import default_engine

    return default_engine().compile(source).run(
        bindings,
        backend="scalar",
        externals=externals,
        statement_hook=statement_hook,
    )
