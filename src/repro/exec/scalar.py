"""Sequential (F77) interpreter for MiniF.

Executes a program the way the paper's Sparc 2 reference runs: one
thread of control, ordinary loop semantics.  Execution events are
recorded into :class:`~repro.exec.counters.ExecutionCounters` so a
scalar machine model can price the run.

The interpreter is dynamically typed (ints, floats, bools,
:class:`~repro.exec.values.FArray`); whole-array assignments and array
sections are supported Fortran-90 style.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..lang import ast
from ..lang.errors import InterpreterError, MiniFError
from ..lang.symbols import implicit_type
from ..reliability import (
    Budget,
    MachineSnapshot,
    TRACE_DEPTH,
    attach_snapshot,
    locate,
    snapshot_env,
)
from .counters import ExecutionCounters
from .intrinsics import call_intrinsic, coerce
from .ops import apply_binop, apply_unop, op_event_kind, value_event_kind
from .signals import (
    GotoSignal,
    LoopCycle,
    LoopExit,
    ReturnSignal,
    StopSignal,
)
from .values import FArray, as_bool_scalar, as_int_scalar


class ScalarInterpreter:
    """Tree-walking sequential interpreter.

    Args:
        source: Parsed program (may contain subroutines).
        externals: Mapping from subroutine name to a Python callable
            ``fn(interp, arg_exprs, arg_values, env)`` implementing it.
        counters: Event accumulator (created fresh when omitted).
        statement_hook: Optional callable ``hook(stmt, env)`` invoked
            before each executed statement — used by trace recorders.
        max_statements: Safety bound on executed statements (shorthand
            for a ``Budget(max_steps=...)``).
        budget: Execution guard; overrides ``max_statements``.
        fault_plan: Deterministic fault injection
            (:class:`~repro.reliability.FaultPlan`).
    """

    def __init__(
        self,
        source: ast.SourceFile,
        externals: dict | None = None,
        counters: ExecutionCounters | None = None,
        statement_hook=None,
        max_statements: int = 20_000_000,
        budget: Budget | None = None,
        fault_plan=None,
    ):
        self.source = source
        self.externals = externals or {}
        self.counters = counters if counters is not None else ExecutionCounters(1)
        self.statement_hook = statement_hook
        self.max_statements = max_statements
        self.budget = budget if budget is not None else Budget(max_steps=max_statements)
        self.fault_plan = fault_plan
        self.executed_statements = 0
        self._meter = self.budget.meter()
        self._trace: deque = deque(maxlen=TRACE_DEPTH)
        self._env: dict = {}
        self._routines = {unit.name: unit for unit in source.units}

    @classmethod
    def from_config(cls, source: ast.SourceFile, config) -> "ScalarInterpreter":
        """Construct from a :class:`~repro.runtime.BackendConfig`.

        The scalar interpreter has no machine width; ``config.nproc``
        is ignored.
        """
        kwargs = dict(
            externals=config.externals,
            counters=config.counters,
            budget=config.budget,
            fault_plan=config.fault_plan,
        )
        if config.max_instructions is not None:
            kwargs["max_statements"] = config.max_instructions
        return cls(source, **kwargs)

    def snapshot(self) -> MachineSnapshot:
        """The interpreter's state right now (for crash dumps)."""
        return MachineSnapshot(
            backend="scalar",
            pc=self.executed_statements,
            steps=self.executed_statements,
            mask=[True],
            mask_stack=[],
            env=snapshot_env(self._env),
            last_ops=list(self._trace),
        )

    # -- entry points -----------------------------------------------------------

    def run(self, routine_name: str | None = None, bindings: dict | None = None) -> dict:
        """Execute a routine (the main PROGRAM by default); return its env.

        Errors raised mid-run carry a :meth:`snapshot` of the machine.
        """
        routine = (
            self.source.main if routine_name is None else self._routines[routine_name]
        )
        env: dict = dict(bindings or {})
        self._env = env
        self._meter = self.budget.meter()
        if self.fault_plan is not None:
            try:
                self.fault_plan.check_backend("scalar")
            except MiniFError as error:
                raise attach_snapshot(error, self.snapshot())
        try:
            self.exec_body(routine.body, env)
        except (ReturnSignal, StopSignal):
            pass
        except MiniFError as error:
            raise attach_snapshot(error, self.snapshot())
        return env

    # -- statements --------------------------------------------------------------

    def exec_body(self, body: list[ast.Stmt], env: dict) -> None:
        """Execute a statement list, honoring GOTO to labels it contains."""
        labels = {
            stmt.label: index
            for index, stmt in enumerate(body)
            if stmt.label is not None
        }
        pc = 0
        while pc < len(body):
            try:
                self.exec_stmt(body[pc], env)
            except GotoSignal as signal:
                if signal.target in labels:
                    pc = labels[signal.target]
                    continue
                raise
            pc += 1

    def exec_stmt(self, stmt: ast.Stmt, env: dict) -> None:
        self.executed_statements += 1
        self._env = env
        self._meter.tick(stmt.loc)
        if self.fault_plan is not None:
            self.fault_plan.raise_op_fault(self.executed_statements, "scalar")
        self._trace.append(
            {
                "pc": self.executed_statements,
                "op": type(stmt).__name__,
                "line": stmt.loc.line or None,
            }
        )
        if self.statement_hook is not None:
            self.statement_hook(stmt, env)
        method = getattr(self, f"_exec_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise InterpreterError(
                f"statement {type(stmt).__name__} not supported here", stmt.loc
            )
        try:
            method(stmt, env)
        except MiniFError as error:
            # The innermost statement wins; outer re-wraps are no-ops.
            if not error.location.line:
                locate(error, stmt.loc)
            raise

    # individual statements ------------------------------------------------------

    def _exec_decl(self, stmt: ast.Decl, env: dict) -> None:
        for entity in stmt.entities:
            base = (
                stmt.base_type
                if stmt.base_type != "dimension"
                else implicit_type(entity.name)
            )
            if entity.dims:
                existing = env.get(entity.name)
                if isinstance(existing, FArray):
                    continue
                shape = tuple(
                    as_int_scalar(self.eval(d, env), f"extent of {entity.name}")
                    for d in entity.dims
                )
                array = FArray(entity.name, shape, base, fill=existing is None)
                if isinstance(existing, np.ndarray):
                    if existing.size != array.size:
                        raise InterpreterError(
                            f"binding for '{entity.name}' has {existing.size} "
                            f"elements, declared {array.size}",
                            stmt.loc,
                        )
                    array.data[...] = existing.reshape(array.shape)
                elif existing is not None:
                    array.data[...] = existing
                env[entity.name] = array

    def _exec_paramdecl(self, stmt: ast.ParamDecl, env: dict) -> None:
        for name, value in zip(stmt.names, stmt.values):
            env[name] = self.eval(value, env)

    def _exec_decomposition(self, stmt, env) -> None:
        pass

    def _exec_align(self, stmt, env) -> None:
        pass

    def _exec_distribute(self, stmt, env) -> None:
        pass

    def _exec_assign(self, stmt: ast.Assign, env: dict) -> None:
        value = self.eval(stmt.value, env)
        self.assign_to(stmt.target, value, env)

    def _exec_do(self, stmt: ast.Do, env: dict) -> None:
        lo = as_int_scalar(self.eval(stmt.lo, env), "DO lower bound")
        hi = as_int_scalar(self.eval(stmt.hi, env), "DO upper bound")
        stride = (
            as_int_scalar(self.eval(stmt.stride, env), "DO stride")
            if stmt.stride is not None
            else 1
        )
        if stride == 0:
            raise InterpreterError("DO stride is zero", stmt.loc)
        trips = max(0, (hi - lo + stride) // stride)
        env[stmt.var] = lo
        value = lo
        for _ in range(trips):
            env[stmt.var] = value
            self.counters.record("acu")
            try:
                self.exec_body(stmt.body, env)
            except LoopExit:
                break
            except LoopCycle:
                pass
            value += stride
        else:
            env[stmt.var] = value

    def _exec_dowhile(self, stmt: ast.DoWhile, env: dict) -> None:
        while True:
            cond = as_bool_scalar(self.eval(stmt.cond, env), "DO WHILE condition")
            self.counters.record("acu")
            if not cond:
                return
            try:
                self.exec_body(stmt.body, env)
            except LoopExit:
                return
            except LoopCycle:
                continue

    def _exec_while(self, stmt: ast.While, env: dict) -> None:
        while True:
            cond = as_bool_scalar(self.eval(stmt.cond, env), "WHILE condition")
            self.counters.record("acu")
            if not cond:
                return
            try:
                self.exec_body(stmt.body, env)
            except LoopExit:
                return
            except LoopCycle:
                continue

    def _exec_if(self, stmt: ast.If, env: dict) -> None:
        cond = as_bool_scalar(self.eval(stmt.cond, env), "IF condition")
        self.counters.record("acu")
        if cond:
            self.exec_body(stmt.then_body, env)
        else:
            self.exec_body(stmt.else_body, env)

    def _exec_where(self, stmt: ast.Where, env: dict) -> None:
        # In sequential execution a WHERE behaves like an IF over the
        # (scalar or uniform) mask.
        mask = self.eval(stmt.mask, env)
        self.counters.record("mask")
        if as_bool_scalar(mask, "WHERE mask"):
            self.exec_body(stmt.then_body, env)
        else:
            self.exec_body(stmt.else_body, env)

    def _exec_forall(self, stmt: ast.Forall, env: dict) -> None:
        lo = as_int_scalar(self.eval(stmt.lo, env), "FORALL lower bound")
        hi = as_int_scalar(self.eval(stmt.hi, env), "FORALL upper bound")
        for value in range(lo, hi + 1):
            env[stmt.var] = value
            if stmt.mask is not None and not as_bool_scalar(
                self.eval(stmt.mask, env), "FORALL mask"
            ):
                continue
            self.exec_body(stmt.body, env)

    def _exec_goto(self, stmt: ast.Goto, env: dict) -> None:
        self.counters.record("acu")
        raise GotoSignal(stmt.target)

    def _exec_continue(self, stmt, env) -> None:
        pass

    def _exec_exitstmt(self, stmt, env) -> None:
        raise LoopExit()

    def _exec_cyclestmt(self, stmt, env) -> None:
        raise LoopCycle()

    def _exec_return(self, stmt, env) -> None:
        raise ReturnSignal()

    def _exec_stop(self, stmt, env) -> None:
        raise StopSignal()

    def _exec_callstmt(self, stmt: ast.CallStmt, env: dict) -> None:
        external = self.externals.get(stmt.name)
        if external is not None:
            # Output arguments may be unset before the call — pass None.
            args = [
                env.get(arg.name)
                if isinstance(arg, ast.Var) and arg.name not in env
                else self.eval(arg, env)
                for arg in stmt.args
            ]
            self.counters.record_call(stmt.name)
            external(self, stmt.args, args, env)
            return
        routine = self._routines.get(stmt.name)
        if routine is None:
            raise InterpreterError(f"CALL to unknown subroutine '{stmt.name}'", stmt.loc)
        if len(routine.params) != len(stmt.args):
            raise InterpreterError(
                f"CALL {stmt.name}: arity mismatch", stmt.loc
            )
        self.counters.record("acu")
        callee_env: dict = {}
        writeback: list[tuple[str, ast.Expr]] = []
        for param, arg in zip(routine.params, stmt.args):
            value = self.eval(arg, env)
            callee_env[param] = value
            if not isinstance(value, FArray) and isinstance(
                arg, (ast.Var, ast.ArrayRef)
            ):
                writeback.append((param, arg))
        try:
            self.exec_body(routine.body, callee_env)
        except ReturnSignal:
            pass
        for param, arg in writeback:
            self.assign_to(arg, callee_env[param], env)

    # -- assignment ----------------------------------------------------------------

    def assign_to(self, target: ast.Expr, value, env: dict) -> None:
        """Store ``value`` into a Var or ArrayRef target."""
        self.counters.record("store")
        if isinstance(target, ast.Var):
            existing = env.get(target.name)
            if isinstance(existing, FArray):
                existing.data[...] = coerce(value)
            else:
                env[target.name] = self._scalarize(value)
            return
        if isinstance(target, ast.ArrayRef):
            array = env.get(target.name)
            if not isinstance(array, FArray):
                raise InterpreterError(
                    f"'{target.name}' is not an array", target.loc
                )
            index = array.np_index([self._eval_subscript(s, env) for s in target.subs])
            array.data[index] = coerce(value)
            return
        raise InterpreterError("invalid assignment target", target.loc)

    @staticmethod
    def _scalarize(value):
        if isinstance(value, np.ndarray) and value.ndim == 0:
            return value.item()
        if isinstance(value, np.generic):
            return value.item()
        return value

    # -- expressions -----------------------------------------------------------------

    def eval(self, expr: ast.Expr, env: dict):
        """Evaluate an expression to a runtime value."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name not in env:
                raise InterpreterError(f"'{expr.name}' used before assignment", expr.loc)
            return env[expr.name]
        if isinstance(expr, ast.ArrayRef):
            return self._eval_arrayref(expr, env)
        if isinstance(expr, ast.Call):
            args = [self.eval(arg, env) for arg in expr.args]
            self.counters.record("reduce" if len(args) == 1 else "int_op")
            return call_intrinsic(expr.name, args)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            result = apply_binop(expr.op, left, right)
            self.counters.record(op_event_kind(expr.op, result))
            return self._scalarize(result)
        if isinstance(expr, ast.UnOp):
            operand = self.eval(expr.operand, env)
            result = apply_unop(expr.op, operand)
            self.counters.record(op_event_kind(expr.op, result))
            return self._scalarize(result)
        if isinstance(expr, ast.VectorLit):
            return np.array([self.eval(item, env) for item in expr.items])
        if isinstance(expr, ast.RangeVec):
            lo = as_int_scalar(self.eval(expr.lo, env), "range lower bound")
            hi = as_int_scalar(self.eval(expr.hi, env), "range upper bound")
            return np.arange(lo, hi + 1, dtype=np.int64)
        raise InterpreterError(
            f"cannot evaluate {type(expr).__name__} here", expr.loc
        )

    def _eval_subscript(self, sub: ast.Expr, env: dict):
        if isinstance(sub, ast.Slice):
            lo = (
                as_int_scalar(self.eval(sub.lo, env), "section lower bound")
                if sub.lo is not None
                else 1
            )
            hi = self.eval(sub.hi, env) if sub.hi is not None else None
            hi_int = as_int_scalar(hi, "section upper bound") if hi is not None else None
            return slice(lo - 1, hi_int)
        value = self.eval(sub, env)
        if isinstance(value, np.ndarray):
            return value
        return as_int_scalar(value, "subscript")

    def _eval_arrayref(self, expr: ast.ArrayRef, env: dict):
        array = env.get(expr.name)
        if isinstance(array, FArray):
            index = array.np_index([self._eval_subscript(s, env) for s in expr.subs])
            result = array.data[index]
            if isinstance(result, np.ndarray):
                return result.copy()
            return self._scalarize(result)
        if isinstance(array, np.ndarray):
            subs = [self._eval_subscript(s, env) for s in expr.subs]
            if len(subs) != array.ndim:
                raise InterpreterError(
                    f"'{expr.name}' subscript rank mismatch", expr.loc
                )
            index = tuple(
                s if isinstance(s, slice) else np.asarray(s) - 1 for s in subs
            )
            result = array[index]
            if isinstance(result, np.ndarray) and result.ndim == 0:
                return result.item()
            return result
        raise InterpreterError(f"'{expr.name}' is not an array", expr.loc)


def run_program(
    source: ast.SourceFile,
    bindings: dict | None = None,
    externals: dict | None = None,
    statement_hook=None,
):
    """Run a program sequentially; unpacks as ``(final env, counters)``.

    .. deprecated::
        Use :func:`repro.run` (``repro.run(source, backend="scalar")``)
        or an explicit :class:`repro.Engine`.  This shim will be
        removed in version 2.0.
    """
    import warnings

    warnings.warn(
        "run_program() is deprecated; use repro.run(source, backend='scalar') "
        "or Engine.compile(...).run(...) — removal planned for 2.0",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..runtime.engine import default_engine

    return default_engine().compile(source).run(
        bindings,
        backend="scalar",
        externals=externals,
        statement_hook=statement_hook,
    )
