"""Shared-memory plumbing for the process-parallel backend.

Large numpy inputs (pairlists, coordinate arrays) must not be copied
once per worker: a pmimd run of W workers over an MD pairlist would
otherwise pay W pickles of the biggest buffer in the problem.  An
:class:`ShmArena` moves every large array binding into a POSIX
shared-memory segment once, and hands workers lightweight
:class:`SharedArraySpec` descriptors; :func:`attach` maps a spec back
into a zero-copy numpy view on the worker side.

Ownership is strictly parent-side: the arena that created the
segments unlinks them (context-manager or explicit
:meth:`ShmArena.close`), and workers *must not* let Python's
``resource_tracker`` adopt the segments they merely attach — on 3.11
``SharedMemory(name=...)`` registers the segment with the tracker, so
:func:`attach` immediately unregisters it again, otherwise the first
worker to exit would tear the arena down under everyone else.

Workers treat attached arrays as read-only inputs.  This is safe by
construction: the scalar interpreter's DECL copies plain-ndarray
bindings into a fresh private ``FArray`` before the program can write
to them, so SPMD programs never mutate the shared segment.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Arrays at or above this many bytes move into shared memory; smaller
#: ones ride the pickle (a segment costs a file descriptor + mmap, so
#: tiny arrays are cheaper to copy).
SHM_THRESHOLD_BYTES = 4096


@dataclass(frozen=True)
class SharedArraySpec:
    """A picklable descriptor of one array living in a shared segment.

    Attributes:
        segment: POSIX shared-memory segment name.
        name: Binding (variable) name the array belongs to.
        shape: Array shape.
        dtype: numpy dtype string (``"float64"``...).
    """

    segment: str
    name: str
    shape: tuple[int, ...]
    dtype: str


def attach(spec: SharedArraySpec):
    """Map a spec into a numpy view; returns ``(array, segment)``.

    The caller must keep the returned segment object alive as long as
    the array view is used, and ``close()`` (never ``unlink()``) it
    afterwards — the creating arena owns the segment's lifetime.
    """
    segment = shared_memory.SharedMemory(name=spec.segment)
    # Python 3.11 registers attached segments with the resource
    # tracker, which would unlink them at this process's exit — but the
    # parent arena owns them.  Undo the registration (private API, so
    # guard it; worst case is a spurious tracker warning at shutdown).
    with contextlib.suppress(Exception):
        resource_tracker.unregister(segment._name, "shared_memory")
    array = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
    )
    return array, segment


class ShmArena:
    """Parent-side owner of the shared segments for one pmimd run.

    Usage::

        with ShmArena() as arena:
            light, specs = arena.share_bindings(bindings)
            # fork workers; each worker attaches the specs
        # segments unlinked here

    Args:
        threshold_bytes: Arrays smaller than this stay in the pickled
            bindings instead of moving to shared memory.
    """

    def __init__(self, threshold_bytes: int = SHM_THRESHOLD_BYTES):
        self.threshold_bytes = threshold_bytes
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False

    def share_array(self, name: str, array: np.ndarray) -> SharedArraySpec:
        """Copy one array into a fresh shared segment; return its spec."""
        source = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, source.nbytes)
        )
        self._segments.append(segment)
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=segment.buf)
        view[...] = source
        return SharedArraySpec(
            segment=segment.name,
            name=name,
            shape=tuple(source.shape),
            dtype=source.dtype.str,
        )

    def share_bindings(self, bindings: dict) -> tuple[dict, list[SharedArraySpec]]:
        """Split bindings into (small picklable dict, shared specs).

        Plain ndarrays and FArray-like values (``.name/.shape/.data``)
        at or above the threshold move into shared memory; everything
        else stays in the returned light dict unchanged.  Workers merge
        the attached arrays back under their binding names — DECL's
        defensive copy then gives each processor its private storage.
        """
        light: dict = {}
        specs: list[SharedArraySpec] = []
        for name, value in bindings.items():
            data = getattr(value, "data", None)
            if (
                data is not None
                and isinstance(data, np.ndarray)
                and data.nbytes >= self.threshold_bytes
            ):
                specs.append(self.share_array(name, data))
            elif (
                isinstance(value, np.ndarray)
                and value.nbytes >= self.threshold_bytes
            ):
                specs.append(self.share_array(name, value))
            else:
                light[name] = value
        return light, specs

    def close(self) -> None:
        """Unlink every segment this arena created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            with contextlib.suppress(Exception):
                segment.close()
            with contextlib.suppress(Exception):
                segment.unlink()
        self._segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # last-resort cleanup; close() is the contract
        with contextlib.suppress(Exception):
            self.close()
