"""Process-parallel SPMD backend: Eq. 1 on real worker processes.

The MIMD simulator (:mod:`repro.exec.mimd`) *models* the paper's
``max_p Σ_i L_i^p`` by running P sequential interpreters in one
process.  This backend makes the wall clock real: the P processors
are partitioned into block or cyclic *shards*, and the shards run on
a pool of forked worker processes driven by a
:class:`~repro.reliability.supervisor.WorkerSupervisor` — heartbeats,
per-shard deadlines, straggler speculation, crash recovery with
bounded retries, and degradation through the Engine's
:class:`~repro.reliability.policy.FallbackPolicy` when the pool is
unrecoverable.

Plumbing choices, all in service of a 1-copy data path:

* Workers are **forked**, so the parsed program, the externals
  registry and any ``bindings_for`` callable are inherited by the
  child — nothing program-shaped is ever pickled.  Platforms without
  fork raise a *retryable* BackendFault, so a fallback chain degrades
  to the in-process ``mimd`` leg instead of crashing.
* Large array bindings travel through a POSIX shared-memory
  :class:`~repro.exec.shm.ShmArena`; each worker attaches the
  segments read-only-by-convention (the scalar interpreter's DECL
  copies plain-ndarray bindings into private storage before the
  program can write).
* Per-processor results stream back over a pipe as they finish, so a
  dead worker loses only the processors it had not yet reported.
* Each worker runs its shard's processors through the ordinary
  :class:`~repro.exec.scalar.ScalarInterpreter` with the per-worker
  :class:`~repro.reliability.Budget`; failures are serialized as
  :func:`~repro.reliability.errors.crash_dump_for` dicts and
  reconstructed into the taxonomy on the parent side.

Chaos injection rides the same :class:`~repro.reliability.FaultPlan`
machinery as the simulated backends: ``worker_kill`` shards
``os._exit`` mid-task, ``worker_hang`` shards go heartbeat-silent,
``worker_slow`` shards straggle — always on the first attempt only,
so the supervisor's recovery provably converges.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..lang import ast
from ..lang.errors import MiniFError
from ..reliability import Budget, crash_dump_for
from ..reliability.checkpoint import CheckpointStore
from ..reliability.errors import BackendFault
from ..reliability.supervisor import SupervisionPolicy, WorkerSupervisor
from .counters import ExecutionCounters
from .mimd import MIMDResult
from .scalar import ScalarInterpreter
from .shm import ShmArena, attach
from .values import FArray

#: Worker heartbeat cadence in interpreted statements.
HEARTBEAT_STATEMENTS = 64


@dataclass(frozen=True)
class Shard:
    """A contiguous or strided slice of the processor space.

    Attributes:
        index: 0-based shard index (the unit of scheduling/recovery).
        procs: The 1-based processor ids this shard executes.
    """

    index: int
    procs: tuple[int, ...]


def plan_shards(nproc: int, nshards: int, layout: str = "block") -> list[Shard]:
    """Partition processors ``1..nproc`` into shards.

    ``"block"`` gives contiguous runs (shard 0 gets the lowest ids),
    ``"cyclic"`` deals processors round-robin — the same two
    distributions the SPMD transform supports, so a shard's processors
    match the data layout the program text was generated for.
    """
    nshards = max(1, min(nshards, nproc))
    procs = list(range(1, nproc + 1))
    if layout == "cyclic":
        groups = [tuple(procs[s::nshards]) for s in range(nshards)]
    elif layout == "block":
        base, extra = divmod(nproc, nshards)
        groups = []
        start = 0
        for s in range(nshards):
            size = base + (1 if s < extra else 0)
            groups.append(tuple(procs[start : start + size]))
            start += size
    else:
        raise ValueError(f"unknown shard layout {layout!r}")
    return [
        Shard(index, group) for index, group in enumerate(groups) if group
    ]


def replicate_bindings(bindings: dict) -> dict:
    """A per-processor private copy of a bindings dict.

    Arrays are deep-copied (an ``FArray`` stays an ``FArray``) so no
    two processors ever alias mutable storage; scalars pass through.
    """
    copied: dict = {}
    for name, value in bindings.items():
        if isinstance(value, FArray):
            copied[name] = FArray.wrap(value.name, value.data.copy())
        elif isinstance(value, np.ndarray):
            copied[name] = value.copy()
        else:
            copied[name] = value
    return copied


@dataclass
class PMIMDResult(MIMDResult):
    """A :class:`MIMDResult` plus the supervision story of the run.

    Attributes:
        events: The supervisor's ordered recovery/decision log.
        recoveries: Dead/wedged/deadline recoveries performed.
        speculations: Straggler duplicates dispatched.
        workers: Worker-pool size used.
        checkpoint_resumes: Processor replays that continued from a
            stored checkpoint instead of re-running from statement 0.
    """

    events: list = field(default_factory=list)
    recoveries: int = 0
    speculations: int = 0
    workers: int = 0
    checkpoint_resumes: int = 0


def _heartbeat_hook(slots):
    """A statement hook that publishes liveness into shared slots."""
    counter = [0]

    def hook(stmt, env):
        counter[0] += 1
        if counter[0] % HEARTBEAT_STATEMENTS == 0:
            slots[0] = time.monotonic()
            slots[1] = float(counter[0])

    return hook


def _inject_slow(slots, seconds: float) -> None:
    """Straggle: sleep in slices, keeping heartbeats flowing."""
    deadline = time.monotonic() + seconds
    while True:
        now = time.monotonic()
        if now >= deadline:
            return
        slots[0] = now
        time.sleep(min(0.01, deadline - now))


def _kill_switch(hook, kill_after: int, counter: list):
    """Wrap a statement hook to ``_exit`` after ``kill_after`` statements.

    Implements :attr:`FaultPlan.kill_after_steps`: the worker runs —
    heartbeating, checkpointing — and then dies abruptly mid-shard,
    exactly the failure checkpointed replay is supposed to bound.
    ``counter`` is shared across the shard attempt's processors, so
    the count is statements *into the attempt*, not into one
    processor's program.
    """

    def killer(stmt, env):
        hook(stmt, env)
        counter[0] += 1
        if counter[0] >= kill_after:
            os._exit(137)

    return killer


def _worker_loop(
    conn,
    slots,
    source: ast.SourceFile,
    nproc: int,
    externals: dict,
    budget,
    fault_plan,
    bindings,
    bindings_for,
    routine_name,
    shm_specs,
    checkpoint_every=None,
    checkpoint_dir=None,
):
    """One worker process: attach inputs, then serve shard tasks forever.

    Everything heavy (``source``, ``externals``, ``bindings_for``)
    arrived through fork, not through these arguments' pickles.

    With checkpointing configured, each processor writes a restorable
    checkpoint to the shared on-disk store every ``checkpoint_every``
    statements under the key ``proc-<p>``; before running a processor
    the worker consults the store, so a *replay* of a crashed shard
    resumes each unfinished processor from its last good checkpoint —
    the lost work is bounded by one interval.  Finished processors'
    keys are cleared so the store only ever describes in-flight work.
    """
    segments = []
    base_bindings = dict(bindings or {})
    store = (
        CheckpointStore(checkpoint_dir)
        if checkpoint_every and checkpoint_dir
        else None
    )
    try:
        for spec in shm_specs:
            array, segment = attach(spec)
            segments.append(segment)
            base_bindings[spec.name] = array
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                return
            if task.get("cmd") == "stop":
                return
            shard = task["shard"]
            attempt = task.get("attempt", 0)
            slots[0] = time.monotonic()
            slots[2] = float(shard)
            kill_after = None
            if fault_plan is not None:
                kind = fault_plan.worker_fault(shard, attempt)
                if kind == "kill":
                    if fault_plan.kill_after_steps:
                        kill_after = int(fault_plan.kill_after_steps)
                    else:
                        os._exit(137)
                elif kind == "hang":
                    time.sleep(fault_plan.hang_seconds)
                elif kind == "slow":
                    _inject_slow(slots, fault_plan.slow_seconds)
            # Injected interpreter-level faults (op_faults & co) fire
            # only on the first attempt: the plan's transient state
            # lives per process, so replays must not re-trip it.
            plan_for_run = fault_plan if attempt == 0 else None
            kill_counter = [0]
            try:
                for proc in task["procs"]:
                    if bindings_for is not None:
                        proc_bindings = dict(bindings_for(proc))
                    else:
                        proc_bindings = replicate_bindings(base_bindings)
                    proc_bindings.setdefault("myproc", proc)
                    proc_bindings.setdefault("nproc", nproc)
                    hook = _heartbeat_hook(slots)
                    if kill_after is not None:
                        hook = _kill_switch(hook, kill_after, kill_counter)
                    key = f"proc-{proc}"
                    resume = None
                    sink = None
                    if store is not None:
                        resume = store.load_latest(key)
                        if resume is not None and resume.backend != "scalar":
                            resume = None  # foreign store — ignore it
                        sink = lambda ckpt, _key=key: store.save(_key, ckpt)
                    interp = ScalarInterpreter(
                        source,
                        externals,
                        statement_hook=hook,
                        budget=budget,
                        fault_plan=plan_for_run,
                        checkpoint_every=(
                            checkpoint_every if store is not None else None
                        ),
                        checkpoint_sink=sink,
                    )
                    if resume is not None:
                        conn.send(
                            {
                                "type": "ckpt-resume",
                                "shard": shard,
                                "attempt": attempt,
                                "proc": proc,
                                "step": resume.step,
                            }
                        )
                        env = interp.run(
                            routine_name=routine_name, resume_from=resume
                        )
                    else:
                        env = interp.run(
                            routine_name=routine_name, bindings=proc_bindings
                        )
                    conn.send(
                        {
                            "type": "proc",
                            "shard": shard,
                            "attempt": attempt,
                            "proc": proc,
                            "payload": {
                                "env": env,
                                "counters": interp.counters,
                                "statements": interp.executed_statements,
                            },
                        }
                    )
                    if store is not None:
                        store.clear(key)
                conn.send({"type": "done", "shard": shard, "attempt": attempt})
            except MiniFError as error:
                conn.send(
                    {
                        "type": "fail",
                        "shard": shard,
                        "attempt": attempt,
                        "dump": crash_dump_for(error),
                    }
                )
            except Exception as error:  # infra failure — classify retryable
                conn.send(
                    {
                        "type": "fail",
                        "shard": shard,
                        "attempt": attempt,
                        "dump": {
                            "error": "BackendFault",
                            "message": (
                                f"worker crashed outside the interpreter: "
                                f"{type(error).__name__}: {error}"
                            ),
                            "retryable": True,
                        },
                    }
                )
    finally:
        for segment in segments:
            try:
                segment.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass


class ProcessWorkerHandle:
    """Supervisor-facing handle over one forked worker process.

    Owns the task/result pipe and the shared heartbeat slots
    ``[last beat (monotonic), statements, current shard]``.
    """

    def __init__(self, worker_id: int, ctx, worker_args: tuple):
        self.worker_id = worker_id
        self._slots = ctx.Array("d", 3, lock=False)
        self._slots[0] = time.monotonic()
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self.process = ctx.Process(
            target=_worker_loop,
            args=(child_conn, self._slots) + worker_args,
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def send(self, task: dict) -> None:
        self._conn.send(task)

    def poll(self) -> bool:
        return self._conn.poll()

    def recv(self) -> dict:
        return self._conn.recv()

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def heartbeat(self) -> tuple[float, float]:
        return float(self._slots[0]), float(self._slots[1])

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass
        self.process.join(timeout=0.5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=0.5)
        # Release the process object's pipe/sentinel descriptors.
        try:
            self.process.close()
        except Exception:
            pass


def default_workers(nproc: int) -> int:
    """Pool size heuristic: per-core, floored at 2 for overlap."""
    return max(1, min(nproc, max(2, os.cpu_count() or 1)))


class PMIMDExecutor:
    """Runs the program's processors across a supervised process pool.

    Args:
        source: Parsed program (SPMD text, same for every processor).
        nproc: Number of (logical) processors.
        externals: External subroutine registry (inherited via fork).
        budget: Per-worker execution guard.
        fault_plan: Chaos injection plan; ``worker_*`` fields drive
            pool-level faults, interpreter-level faults fire on first
            attempts only.
        workers: Worker-process pool size
            (default: :func:`default_workers`).
        shards: Shard count (default ``min(nproc, 2 × workers)`` so
            the supervisor has spare shards to load-balance with).
        shard_layout: ``"block"`` or ``"cyclic"``.
        supervision: The :class:`SupervisionPolicy` in force.
        checkpoint_every: Per-processor checkpoint interval in
            interpreted statements; ``None`` disables durable
            execution (replays rerun the shard from statement 0).
        checkpoint_dir: On-disk :class:`CheckpointStore` root shared
            by all workers.  Defaults to a private temporary directory
            (removed when the run finishes), so intra-run recovery
            works with no configuration; point it somewhere durable
            only for a dedicated run — stale keys from a *different*
            program would be resumed blindly.
    """

    def __init__(
        self,
        source: ast.SourceFile,
        nproc: int,
        externals: dict | None = None,
        budget: Budget | None = None,
        fault_plan=None,
        *,
        workers: int | None = None,
        shards: int | None = None,
        shard_layout: str = "block",
        supervision: SupervisionPolicy | None = None,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | None = None,
    ):
        if nproc < 1:
            raise ValueError(f"pmimd needs nproc >= 1, got {nproc}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.source = source
        self.nproc = nproc
        self.externals = externals or {}
        self.budget = budget
        self.fault_plan = fault_plan
        self.workers = workers if workers else default_workers(nproc)
        self.shards = (
            shards if shards else max(1, min(nproc, 2 * self.workers))
        )
        self.shard_layout = shard_layout
        self.supervision = (
            supervision if supervision is not None else SupervisionPolicy()
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir

    @classmethod
    def from_config(cls, source: ast.SourceFile, config) -> "PMIMDExecutor":
        """Construct from a :class:`~repro.runtime.BackendConfig`."""
        return cls(
            source,
            config.nproc,
            externals=config.externals,
            budget=config.budget,
            fault_plan=config.fault_plan,
            workers=config.workers,
            shards=config.shards,
            shard_layout=config.shard_layout,
            supervision=config.supervision,
            checkpoint_every=config.checkpoint_every,
            checkpoint_dir=config.checkpoint_dir,
        )

    def run(
        self,
        bindings: dict | None = None,
        bindings_for=None,
        routine_name: str | None = None,
    ) -> PMIMDResult:
        """Execute every processor; return a :class:`PMIMDResult`.

        Args:
            bindings: Initial environment shared by all processors
                (large arrays ride shared memory; each processor still
                gets private storage).
            bindings_for: Callable ``p -> dict`` giving processor ``p``
                its environment — wins over ``bindings`` and is called
                *inside* the worker (inherited via fork).
            routine_name: Routine to run (main program by default).
        """
        if self.fault_plan is not None:
            self.fault_plan.check_backend("pmimd")
        if "fork" not in multiprocessing.get_all_start_methods():
            # Degradable, not fatal: a FallbackPolicy chain lands on
            # the in-process mimd leg.
            raise BackendFault(
                "pmimd needs the fork start method (unavailable on this "
                "platform)",
                retryable=True,
            )
        ctx = multiprocessing.get_context("fork")
        shards = plan_shards(self.nproc, self.shards, self.shard_layout)
        nworkers = max(1, min(self.workers, len(shards)))
        arena = ShmArena()
        ckpt_dir = self.checkpoint_dir
        own_ckpt_dir = None
        if self.checkpoint_every and ckpt_dir is None:
            ckpt_dir = own_ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
        try:
            if bindings_for is None and bindings:
                light, specs = arena.share_bindings(bindings)
            else:
                light, specs = (bindings or {}), []
            worker_args = (
                self.source,
                self.nproc,
                self.externals,
                self.budget,
                self.fault_plan,
                light,
                bindings_for,
                routine_name,
                tuple(specs),
                self.checkpoint_every,
                ckpt_dir,
            )
            supervisor = WorkerSupervisor(
                lambda worker_id: ProcessWorkerHandle(
                    worker_id, ctx, worker_args
                ),
                nworkers,
                self.supervision,
                backend="pmimd",
            )
            outcome = supervisor.run(shards)
        finally:
            arena.close()
            if own_ckpt_dir is not None:
                shutil.rmtree(own_ckpt_dir, ignore_errors=True)
        envs: list[dict] = []
        counters: list[ExecutionCounters] = []
        statements: list[int] = []
        for proc in range(1, self.nproc + 1):
            payload = outcome.results.get(proc)
            if payload is None:  # supervisor contract: all-or-raise
                raise BackendFault(
                    f"pmimd: processor {proc} produced no result",
                    retryable=True,
                )
            envs.append(payload["env"])
            counters.append(payload["counters"])
            statements.append(payload["statements"])
        return PMIMDResult(
            envs,
            counters,
            statements,
            events=outcome.events,
            recoveries=outcome.recoveries,
            speculations=outcome.speculations,
            workers=nworkers,
            checkpoint_resumes=sum(
                1
                for event in outcome.events
                if event.get("event") == "checkpoint-resume"
            ),
        )
