"""Operator semantics shared by the MiniF interpreters.

Implements Fortran's arithmetic on Python scalars and numpy arrays:
integer division truncates toward zero, comparisons yield logicals,
``.AND.``/``.OR.`` operate on logicals, and mixed int/real arithmetic
promotes to real.
"""

from __future__ import annotations

import numpy as np

from ..lang.errors import InterpreterError
from .intrinsics import coerce

#: Comparison operators (symbolic spellings).
COMPARISONS = frozenset({"==", "/=", "<", "<=", ">", ">="})

#: Logical connectives.
LOGICALS = frozenset({".AND.", ".OR."})


def _is_int_like(value) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, np.integer)):
        return True
    if isinstance(value, np.ndarray):
        return value.dtype.kind in ("i", "u")
    return False


def fortran_div(left, right):
    """Division with Fortran semantics: int/int truncates toward zero."""
    if _is_int_like(left) and _is_int_like(right):
        if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
            with np.errstate(divide="raise"):
                quotient = np.asarray(left) / np.asarray(right)
            return np.trunc(quotient).astype(np.int64)
        if right == 0:
            raise InterpreterError("integer division by zero")
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return np.divide(left, right) if isinstance(left, np.ndarray) or isinstance(
        right, np.ndarray
    ) else left / right


def apply_binop(op: str, left, right):
    """Apply a MiniF binary operator to evaluated operands."""
    left = coerce(left)
    right = coerce(right)
    try:
        if op == "+":
            return np.add(left, right) if _any_array(left, right) else left + right
        if op == "-":
            return np.subtract(left, right) if _any_array(left, right) else left - right
        if op == "*":
            return np.multiply(left, right) if _any_array(left, right) else left * right
        if op == "/":
            return fortran_div(left, right)
        if op == "**":
            return np.power(left, right) if _any_array(left, right) else left**right
        if op == "==":
            return np.equal(left, right) if _any_array(left, right) else left == right
        if op == "/=":
            return np.not_equal(left, right) if _any_array(left, right) else left != right
        if op == "<":
            return np.less(left, right) if _any_array(left, right) else left < right
        if op == "<=":
            return np.less_equal(left, right) if _any_array(left, right) else left <= right
        if op == ">":
            return np.greater(left, right) if _any_array(left, right) else left > right
        if op == ">=":
            return np.greater_equal(left, right) if _any_array(left, right) else left >= right
        if op == ".AND.":
            return np.logical_and(left, right) if _any_array(left, right) else bool(left) and bool(right)
        if op == ".OR.":
            return np.logical_or(left, right) if _any_array(left, right) else bool(left) or bool(right)
    except FloatingPointError as exc:
        raise InterpreterError(f"arithmetic fault in '{op}': {exc}") from exc
    raise InterpreterError(f"unknown binary operator '{op}'")


def apply_unop(op: str, operand):
    """Apply a MiniF unary operator."""
    operand = coerce(operand)
    if op == "-":
        return np.negative(operand) if isinstance(operand, np.ndarray) else -operand
    if op == ".NOT.":
        return (
            np.logical_not(operand)
            if isinstance(operand, np.ndarray)
            else not bool(operand)
        )
    raise InterpreterError(f"unknown unary operator '{op}'")


def _any_array(left, right) -> bool:
    return isinstance(left, np.ndarray) or isinstance(right, np.ndarray)


def op_event_kind(op: str, result) -> str:
    """Classify an operator application for execution accounting."""
    if op in LOGICALS:
        return "logical"
    if op in COMPARISONS:
        return "int_op" if _is_int_like_result(result) else "real_op"
    return "int_op" if _is_int_like_result(result) else "real_op"


def _is_int_like_result(result) -> bool:
    if isinstance(result, bool):
        return True
    if isinstance(result, np.ndarray):
        return result.dtype.kind in ("i", "u", "b")
    return isinstance(result, (int, np.integer))


def value_event_kind(value) -> str:
    """Classify a stored value for execution accounting."""
    value = coerce(value)
    if isinstance(value, bool):
        return "logical"
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "b":
            return "logical"
        return "int_op" if value.dtype.kind in ("i", "u") else "real_op"
    return "int_op" if isinstance(value, (int, np.integer)) else "real_op"
