"""Intrinsic functions for the MiniF interpreters.

One registry serves every interpreter.  Reductions are *mask-aware*:
the SIMD interpreter passes the current activity mask so that, e.g.,
``max(pCnt(At1))`` in the paper's Figure 14 reduces over the active
processors only (idle lanes hold stale values that must not leak into
loop bounds).

Calling conventions follow the paper's loose pseudo-Fortran:

* ``MAX``/``MIN`` with two or more arguments are elementwise; with a
  single vector argument they reduce across processors (the paper's
  ``max(L(i'))``).
* ``ANY``/``ALL``/``COUNT``/``SUM``/``MAXVAL``/``MINVAL`` reduce.
"""

from __future__ import annotations

import numpy as np

from ..lang.errors import InterpreterError
from .values import FArray

#: Reduction identities used when no lane is active.
_REDUCE_IDENTITY = {
    "any": False,
    "all": True,
    "count": 0,
    "sum": 0,
    "maxval": None,
    "minval": None,
    "max": None,
    "min": None,
}

#: Intrinsics that reduce a vector to a host scalar.
REDUCTIONS = frozenset({"any", "all", "count", "sum", "maxval", "minval"})


def coerce(value):
    """Unwrap :class:`FArray` into its numpy data for computation."""
    if isinstance(value, FArray):
        return value.data
    return value


def _masked(value, mask):
    """Select the active elements of ``value`` for a reduction.

    ``mask`` is either None (reduce everything) or a boolean vector
    whose length matches the leading axis of per-PE values.
    """
    arr = np.asarray(coerce(value))
    if mask is None or arr.ndim == 0:
        return arr.ravel()
    mask = np.asarray(mask)
    if arr.shape[:1] == mask.shape:
        return arr[mask].ravel()
    return arr.ravel()


def _reduce(name: str, value, mask, empty_error: str):
    selected = _masked(value, mask)
    if selected.size == 0:
        identity = _REDUCE_IDENTITY[name]
        if identity is None:
            raise InterpreterError(empty_error)
        return identity
    if name == "any":
        return bool(np.any(selected))
    if name == "all":
        return bool(np.all(selected))
    if name == "count":
        return int(np.count_nonzero(selected))
    if name == "sum":
        total = selected.sum()
        return float(total) if selected.dtype.kind == "f" else int(total)
    if name in ("maxval", "max"):
        top = selected.max()
        return float(top) if selected.dtype.kind == "f" else int(top)
    if name in ("minval", "min"):
        bottom = selected.min()
        return float(bottom) if selected.dtype.kind == "f" else int(bottom)
    raise InterpreterError(f"unknown reduction '{name}'")


def _elementwise_chain(func, args):
    result = coerce(args[0])
    for arg in args[1:]:
        result = func(result, coerce(arg))
    return result


def call_intrinsic(name: str, args: list, mask=None):
    """Evaluate intrinsic ``name`` on already-evaluated ``args``.

    Args:
        name: Lowercase intrinsic name.
        args: Evaluated argument values.
        mask: Activity mask for reductions (SIMD mode), or None.

    Returns:
        The result value (host scalar or numpy array).
    """
    if name in REDUCTIONS:
        if len(args) != 1:
            raise InterpreterError(f"{name.upper()} takes one argument")
        return _reduce(name, args[0], mask, f"{name.upper()} over empty active set")
    if name in ("max", "min"):
        if not args:
            raise InterpreterError(f"{name.upper()} needs arguments")
        if len(args) == 1:
            value = coerce(args[0])
            if isinstance(value, np.ndarray):
                return _reduce(name, value, mask, f"{name.upper()} over empty active set")
            return value
        func = np.maximum if name == "max" else np.minimum
        return _elementwise_chain(func, args)
    if name == "mod":
        if len(args) != 2:
            raise InterpreterError("MOD takes two arguments")
        return np.mod(coerce(args[0]), coerce(args[1]))
    if name == "merge":
        if len(args) != 3:
            raise InterpreterError("MERGE takes three arguments")
        return np.where(
            np.asarray(coerce(args[2]), dtype=bool), coerce(args[0]), coerce(args[1])
        )
    if name == "size":
        if len(args) != 1:
            raise InterpreterError("SIZE takes one argument")
        value = args[0]
        if isinstance(value, FArray):
            return value.size
        return int(np.asarray(value).size)
    single = {
        "abs": np.abs,
        "sqrt": np.sqrt,
        "exp": np.exp,
        "log": np.log,
        "nint": lambda v: np.rint(v).astype(np.int64),
        "float": lambda v: np.asarray(v, dtype=np.float64)
        if isinstance(v, np.ndarray)
        else float(v),
        "ceiling": lambda v: np.ceil(v).astype(np.int64),
        "floor": lambda v: np.floor(v).astype(np.int64),
        "iand": None,
        "ior": None,
    }
    if name in ("iand", "ior"):
        if len(args) != 2:
            raise InterpreterError(f"{name.upper()} takes two arguments")
        func = np.bitwise_and if name == "iand" else np.bitwise_or
        return func(coerce(args[0]), coerce(args[1]))
    if name in single:
        if len(args) != 1:
            raise InterpreterError(f"{name.upper()} takes one argument")
        result = single[name](coerce(args[0]))
        if isinstance(result, np.ndarray) and result.ndim == 0:
            return result.item()
        return result
    raise InterpreterError(f"unknown intrinsic '{name}'")


def is_reduction_call(name: str, argc: int) -> bool:
    """True when this intrinsic call performs a cross-processor reduction."""
    return name in REDUCTIONS or (name in ("max", "min") and argc == 1)
