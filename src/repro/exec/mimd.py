"""MIMD simulator: P independent sequential interpreters.

Models the paper's F77mimd execution level (Figure 3): each processor
has a *separate name space* and runs the same program text on its own
data.  The simulated parallel time is the maximum over processors of
the per-processor work — Equation 1's ``max_p Σ_i L_i^p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..reliability import Budget
from .counters import ExecutionCounters
from .scalar import ScalarInterpreter


@dataclass
class MIMDResult:
    """Outcome of a MIMD run.

    Attributes:
        envs: Final environment of each processor.
        counters: Per-processor execution counters.
    """

    envs: list[dict]
    counters: list[ExecutionCounters]
    statements: list[int] = field(default_factory=list)

    @property
    def nproc(self) -> int:
        return len(self.envs)

    def time_steps(self, kind: str | None = None) -> int:
        """Parallel completion time: max over processors.

        Args:
            kind: Restrict to one event kind (e.g. ``"call"``); by
                default all lockstep-equivalent steps count.
        """
        if kind is None:
            return max((c.total_steps for c in self.counters), default=0)
        return max((c.layer_steps.get(kind, 0) for c in self.counters), default=0)

    def call_counts(self, name: str) -> list[int]:
        """Per-processor number of calls to an external routine."""
        return [c.calls.get(name, 0) for c in self.counters]

    def time_calls(self, name: str) -> int:
        """Parallel time measured in calls to ``name`` (Eq. 1 with unit cost)."""
        return max(self.call_counts(name), default=0)


class MIMDSimulator:
    """Runs the same routine on P processors with private name spaces.

    Args:
        source: Parsed program (SPMD text, same for every processor).
        nproc: Number of processors.
        externals: External subroutine registry shared by all
            processors (called with each processor's interpreter).
        budget: Per-processor execution guard
            (:class:`~repro.reliability.Budget`).
        fault_plan: Deterministic fault injection shared by all
            processors (:class:`~repro.reliability.FaultPlan`).
    """

    def __init__(
        self,
        source: ast.SourceFile,
        nproc: int,
        externals: dict | None = None,
        budget: Budget | None = None,
        fault_plan=None,
    ):
        self.source = source
        self.nproc = nproc
        self.externals = externals or {}
        self.budget = budget
        self.fault_plan = fault_plan

    @classmethod
    def from_config(cls, source: ast.SourceFile, config) -> "MIMDSimulator":
        """Construct from a :class:`~repro.runtime.BackendConfig`.

        Per-processor interpreters each get fresh counters;
        ``config.counters``/``max_instructions``/``vm_fuse`` do not
        apply to this backend and are ignored.
        """
        return cls(
            source,
            config.nproc,
            externals=config.externals,
            budget=config.budget,
            fault_plan=config.fault_plan,
        )

    def run(
        self,
        bindings_for=None,
        routine_name: str | None = None,
        statement_hook_for=None,
    ) -> MIMDResult:
        """Execute the program on every processor.

        Args:
            bindings_for: Callable ``p -> dict`` giving processor ``p``
                (1-based) its initial environment; every environment
                automatically receives ``myproc`` and ``nproc``.
            routine_name: Routine to run (main program by default).
            statement_hook_for: Optional callable ``p -> hook`` giving
                each processor its own statement hook.

        Returns:
            A :class:`MIMDResult` with per-processor envs and counters.
        """
        if self.fault_plan is not None:
            self.fault_plan.check_backend("mimd")
        envs: list[dict] = []
        counters: list[ExecutionCounters] = []
        statements: list[int] = []
        for p in range(1, self.nproc + 1):
            bindings = dict(bindings_for(p)) if bindings_for is not None else {}
            bindings.setdefault("myproc", p)
            bindings.setdefault("nproc", self.nproc)
            hook = statement_hook_for(p) if statement_hook_for is not None else None
            interp = ScalarInterpreter(
                self.source,
                self.externals,
                statement_hook=hook,
                budget=self.budget,
                fault_plan=self.fault_plan,
            )
            env = interp.run(routine_name=routine_name, bindings=bindings)
            envs.append(env)
            counters.append(interp.counters)
            statements.append(interp.executed_statements)
        return MIMDResult(envs, counters, statements)


def run_mimd_program(
    source: ast.SourceFile,
    nproc: int,
    bindings_for=None,
    externals: dict | None = None,
):
    """Run the program on P private-namespace processors.

    .. deprecated::
        Use :func:`repro.run` (``repro.run(source, nproc=p,
        backend="mimd")``) or an explicit :class:`repro.Engine`.  This
        shim will be removed in version 2.0.
    """
    import warnings

    warnings.warn(
        "run_mimd_program() is deprecated; use repro.run(source, nproc=..., "
        "backend='mimd') or Engine.compile(...).run(...) — removal planned "
        "for 2.0",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..runtime.engine import default_engine

    return default_engine().compile(source).run(
        nproc=nproc,
        backend="mimd",
        externals=externals,
        bindings_for=bindings_for,
    )
