"""Lockstep SIMD interpreter for MiniF (F90simd semantics).

Models the paper's machine class — one program counter shared by ``P``
processing elements:

* scalars are *replicated*: a per-PE vector of length ``P`` (the
  F90simd convention of Section 2);
* ``WHERE``/``ELSEWHERE`` push activity masks; statements in both
  branches are *issued to all PEs* and cost full lockstep steps, with
  masked-out PEs idling — exactly the inefficiency of Equation 2;
* ``IF`` conditions and ``DO`` bounds must be uniform across the
  active PEs (they execute on the front end / array control unit);
  per-PE divergence requires a WHERE — the interpreter *rejects*
  non-SIMDizable control flow rather than silently serializing it;
* ``WHILE`` accepts a scalar condition (usually ``ANY(...)``) or a
  vector condition whose active elements agree (the paper's
  array-controlled WHILE);
* vector subscripts perform per-PE indirect addressing (gather /
  scatter), bounds-checked on active lanes only and charged separately
  — indirect addressing is priced differently on both machines;
* arrays whose trailing dimensions are laid out serially in PE memory
  ("memory layers") charge one lockstep step per layer touched.

All events land in :class:`~repro.exec.counters.ExecutionCounters`;
machine models in :mod:`repro.simd` turn them into cycles and seconds.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..lang import ast
from ..lang.errors import InterpreterError, MiniFError
from ..lang.symbols import implicit_type
from ..reliability import (
    Budget,
    DivergenceFault,
    MachineSnapshot,
    OutOfBoundsFault,
    TRACE_DEPTH,
    attach_snapshot,
    locate,
    render_mask,
    snapshot_env,
)
from .counters import ExecutionCounters
from .intrinsics import call_intrinsic, coerce, is_reduction_call
from .ops import apply_binop, apply_unop, op_event_kind
from .signals import (
    GotoSignal,
    LoopCycle,
    LoopExit,
    ReturnSignal,
    StopSignal,
)
from .values import FArray


def _lane_mask(mask, nproc: int) -> np.ndarray:
    """Project a mask onto lanes: (P,) bool array of 'lane has activity'."""
    if mask is None or isinstance(mask, bool):
        return np.full(nproc, mask if isinstance(mask, bool) else True)
    mask = np.asarray(mask)
    if mask.ndim == 1:
        return mask
    return mask.any(axis=tuple(range(1, mask.ndim)))


def _align_mask(mask, value_ndim: int):
    """Reshape a (P,) mask so it broadcasts against a (P, k, ...) value."""
    if isinstance(mask, bool) or mask is None:
        return mask
    mask = np.asarray(mask)
    while mask.ndim < value_ndim:
        mask = mask[..., None]
    return mask


class SIMDInterpreter:
    """Tree-walking interpreter with lockstep SIMD semantics.

    Args:
        source: Parsed program.
        nproc: Number of processing elements ``P``.
        externals: Mapping from subroutine name to a Python callable
            ``fn(interp, arg_exprs, arg_values, env, mask)``.
        counters: Event accumulator (fresh one when omitted).
        statement_hook: Optional ``hook(stmt, env, mask)`` called before
            each executed statement (trace recording).
        max_statements: Safety bound on executed statements (shorthand
            for a ``Budget(max_steps=...)``).
        budget: Execution guard; overrides ``max_statements``.
        fault_plan: Deterministic fault injection
            (:class:`~repro.reliability.FaultPlan`).
    """

    def __init__(
        self,
        source: ast.SourceFile,
        nproc: int,
        externals: dict | None = None,
        counters: ExecutionCounters | None = None,
        statement_hook=None,
        max_statements: int = 20_000_000,
        budget: Budget | None = None,
        fault_plan=None,
    ):
        if nproc < 1:
            raise InterpreterError(f"need at least one PE, got {nproc}")
        self.source = source
        self.nproc = nproc
        self.externals = externals or {}
        self.counters = counters if counters is not None else ExecutionCounters(nproc)
        self.statement_hook = statement_hook
        self.max_statements = max_statements
        self.budget = budget if budget is not None else Budget(max_steps=max_statements)
        self.fault_plan = fault_plan

        self.executed_statements = 0
        self._meter = self.budget.meter()
        self._trace: deque = deque(maxlen=TRACE_DEPTH)
        self._last_loc = None
        self._mask_frames: list = []
        self._env: dict = {}
        self._routines = {unit.name: unit for unit in source.units}
        self._mask = np.ones(nproc, dtype=bool)

    @classmethod
    def from_config(cls, source: ast.SourceFile, config) -> "SIMDInterpreter":
        """Construct from a :class:`~repro.runtime.BackendConfig`."""
        kwargs = dict(
            externals=config.externals,
            counters=config.counters,
            budget=config.budget,
            fault_plan=config.fault_plan,
        )
        if config.max_instructions is not None:
            kwargs["max_statements"] = config.max_instructions
        return cls(source, config.nproc, **kwargs)

    def snapshot(self) -> MachineSnapshot:
        """The interpreter's state right now (for crash dumps)."""
        return MachineSnapshot(
            backend="interpreter",
            pc=self.executed_statements,
            steps=self.executed_statements,
            mask=render_mask(self._mask),
            mask_stack=[render_mask(outer) for outer in self._mask_frames],
            env=snapshot_env(self._env),
            last_ops=list(self._trace),
            location=self._last_loc,
        )

    # -- entry point -----------------------------------------------------------

    def run(self, routine_name: str | None = None, bindings: dict | None = None) -> dict:
        """Execute a routine on the full PE array; return its env.

        Errors raised mid-run carry a :meth:`snapshot` of the machine.
        """
        routine = (
            self.source.main if routine_name is None else self._routines[routine_name]
        )
        env: dict = dict(bindings or {})
        self._env = env
        self._meter = self.budget.meter()
        if self.fault_plan is not None:
            try:
                self.fault_plan.check_backend("interpreter")
            except MiniFError as error:
                raise attach_snapshot(error, self.snapshot())
            self._mask = self._mask & self.fault_plan.dropout_mask(
                self.nproc, "interpreter"
            )
        try:
            self.exec_body(routine.body, env)
        except (ReturnSignal, StopSignal):
            pass
        except MiniFError as error:
            raise attach_snapshot(error, self.snapshot())
        return env

    # -- mask helpers -----------------------------------------------------------

    @property
    def mask(self) -> np.ndarray:
        """The current activity mask."""
        return self._mask

    @property
    def lanes_active(self) -> np.ndarray:
        return _lane_mask(self._mask, self.nproc)

    def _combine(self, mask, cond):
        cond = np.asarray(coerce(cond))
        if cond.ndim == 0:
            cond = np.full(self.nproc, bool(cond))
        if cond.dtype.kind != "b":
            raise InterpreterError("mask expression is not logical")
        base = np.asarray(mask)
        if base.ndim < cond.ndim:
            base = _align_mask(base, cond.ndim)
        elif cond.ndim < base.ndim:
            cond = _align_mask(cond, base.ndim)
        return base & cond

    def _uniform_int(self, value, what: str) -> int:
        """Coerce to a host int; per-PE values must agree on active lanes."""
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            lanes = _lane_mask(self._mask, self.nproc)
            selected = value[lanes] if value.shape[0] == self.nproc else value.ravel()
            if selected.size == 0:
                raise InterpreterError(f"{what}: no active processors")
            first = selected.flat[0]
            if not np.all(selected == first):
                raise DivergenceFault(
                    f"{what} diverges across active processors — "
                    "a SIMD machine needs a uniform value here "
                    "(use MAXVAL/WHERE, i.e. SIMDize the loop)"
                )
            return int(first)
        if isinstance(value, float) and not value.is_integer():
            raise InterpreterError(f"{what} is not an integer: {value}")
        return int(value)

    def _uniform_bool(self, value, what: str) -> bool:
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            lanes = _lane_mask(self._mask, self.nproc)
            selected = value[lanes] if value.shape[0] == self.nproc else value.ravel()
            if selected.size == 0:
                return False
            first = selected.flat[0]
            if not np.all(selected == first):
                raise DivergenceFault(
                    f"{what} diverges across active processors — "
                    "use WHERE for per-PE control flow"
                )
            return bool(first)
        return bool(value)

    # -- statements ---------------------------------------------------------------

    def exec_body(self, body: list[ast.Stmt], env: dict) -> None:
        labels = {
            stmt.label: index
            for index, stmt in enumerate(body)
            if stmt.label is not None
        }
        pc = 0
        while pc < len(body):
            try:
                self.exec_stmt(body[pc], env)
            except GotoSignal as signal:
                if signal.target in labels:
                    pc = labels[signal.target]
                    continue
                raise
            pc += 1

    def exec_stmt(self, stmt: ast.Stmt, env: dict) -> None:
        self.executed_statements += 1
        self._env = env
        if stmt.loc is not None and stmt.loc.line:
            self._last_loc = stmt.loc
        self._meter.tick(stmt.loc)
        if self.fault_plan is not None:
            self.fault_plan.raise_op_fault(self.executed_statements, "interpreter")
        self._trace.append(
            {
                "pc": self.executed_statements,
                "op": type(stmt).__name__,
                "line": stmt.loc.line or None,
            }
        )
        if self.statement_hook is not None:
            self.statement_hook(stmt, env, self._mask)
        method = getattr(self, f"_exec_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise InterpreterError(
                f"statement {type(stmt).__name__} not supported on SIMD", stmt.loc
            )
        try:
            method(stmt, env)
        except MiniFError as error:
            # The innermost statement wins; outer re-wraps are no-ops.
            if not error.location.line:
                locate(error, stmt.loc)
            raise

    # declarations ------------------------------------------------------------------

    def _exec_decl(self, stmt: ast.Decl, env: dict) -> None:
        for entity in stmt.entities:
            base = (
                stmt.base_type
                if stmt.base_type != "dimension"
                else implicit_type(entity.name)
            )
            if not entity.dims:
                continue
            existing = env.get(entity.name)
            if isinstance(existing, FArray):
                continue
            shape = tuple(
                self._uniform_int(self.eval(d, env), f"extent of {entity.name}")
                for d in entity.dims
            )
            array = FArray(entity.name, shape, base, fill=existing is None)
            if isinstance(existing, np.ndarray):
                if existing.size != array.size:
                    raise InterpreterError(
                        f"binding for '{entity.name}' has {existing.size} elements, "
                        f"declared {array.size}",
                        stmt.loc,
                    )
                array.data[...] = existing.reshape(array.shape)
            elif existing is not None:
                array.data[...] = existing
            env[entity.name] = array

    def _exec_paramdecl(self, stmt: ast.ParamDecl, env: dict) -> None:
        for name, value in zip(stmt.names, stmt.values):
            env[name] = self.eval(value, env)

    def _exec_decomposition(self, stmt, env) -> None:
        pass

    def _exec_align(self, stmt, env) -> None:
        pass

    def _exec_distribute(self, stmt, env) -> None:
        pass

    # assignment -----------------------------------------------------------------------

    def _exec_assign(self, stmt: ast.Assign, env: dict) -> None:
        value = self.eval(stmt.value, env)
        self.assign_to(stmt.target, value, env)

    def assign_to(self, target: ast.Expr, value, env: dict) -> None:
        """Masked store of ``value`` into a Var or ArrayRef target."""
        value = coerce(value)
        if isinstance(target, ast.Var):
            self._assign_var(target, value, env)
            return
        if isinstance(target, ast.ArrayRef):
            self._assign_arrayref(target, value, env)
            return
        raise InterpreterError("invalid assignment target", target.loc)

    def _assign_var(self, target: ast.Var, value, env: dict) -> None:
        existing = env.get(target.name)
        if isinstance(existing, FArray):
            layers = max(1, existing.size // max(1, self.nproc))
            self.counters.record(
                "store", width=self.nproc, layers=layers, mask=self.lanes_active
            )
            if bool(np.all(self._mask)):
                existing.data[...] = value
                return
            if existing.shape[0] != self.nproc:
                raise InterpreterError(
                    f"masked whole-array assignment to '{target.name}' needs a "
                    f"leading dimension of {self.nproc}",
                    target.loc,
                )
            mask = _align_mask(self._mask, existing.data.ndim)
            existing.data[...] = np.where(mask, value, existing.data)
            return
        self.counters.record(
            "store",
            width=self.nproc,
            layers=self._layers_of(value),
            mask=self.lanes_active,
        )
        if bool(np.all(self._mask)):
            env[target.name] = self._replicate_if_needed(value)
            return
        if existing is None:
            # First write happens under a partial mask: the masked-out
            # lanes' memory is simply uninitialized on a real machine;
            # model it as zero (of the stored value's type).
            sample = np.asarray(value)
            existing = np.zeros(self.nproc, dtype=sample.dtype)
        old = np.asarray(coerce(existing))
        new = np.asarray(value)
        if old.ndim == 0:
            old = np.full(self.nproc, old.item())
        mask = self._mask
        if new.ndim > old.ndim:
            old = np.broadcast_to(old[..., None], new.shape).copy()
        mask = _align_mask(_lane_mask(mask, self.nproc), max(old.ndim, new.ndim))
        env[target.name] = np.where(mask, new, old)

    def _replicate_if_needed(self, value):
        if isinstance(value, np.ndarray):
            return value
        return value

    def _assign_arrayref(self, target: ast.ArrayRef, value, env: dict) -> None:
        array = env.get(target.name)
        if not isinstance(array, FArray):
            raise InterpreterError(f"'{target.name}' is not an array", target.loc)
        subs = [self._eval_subscript(s, env) for s in target.subs]
        if any(isinstance(s, np.ndarray) and s.ndim >= 1 for s in subs):
            self._scatter(array, subs, value, target)
            return
        # Issued with no active lane: the store writes nothing, so the
        # (possibly garbage) address must not trap — clamp, don't check.
        index = array.np_index(subs, clamp=not self.lanes_active.any())
        region = array.data[index]
        layers = self._layers_of(region)
        self.counters.record(
            "store", width=self.nproc, layers=layers, mask=self.lanes_active
        )
        if not (isinstance(region, np.ndarray) and region.ndim >= 1):
            # All lanes address the same element.  A per-lane value is
            # legal lockstep only when the active lanes agree (they all
            # write the same thing); otherwise the store is a race.
            varr = np.asarray(value)
            if varr.ndim >= 1:
                if varr.ndim != 1 or varr.shape[0] != self.nproc:
                    raise InterpreterError(
                        f"cannot store an array value into element of "
                        f"'{target.name}'",
                        target.loc,
                    )
                lanes = _lane_mask(self._mask, self.nproc)
                active = varr[lanes] if lanes.any() else varr
                if not np.all(active == active.flat[0]):
                    # The static R001 lint rule catches this at compile
                    # time; classify as a divergence fault either way.
                    raise DivergenceFault(
                        f"divergent lanes race on scalar element store to "
                        f"'{target.name}'",
                        target.loc,
                    )
                value = active.flat[0].item()
        if bool(np.all(self._mask)):
            array.data[index] = value
            return
        if isinstance(region, np.ndarray) and region.ndim >= 1:
            if region.shape[0] != self.nproc:
                raise InterpreterError(
                    f"masked section assignment to '{target.name}' needs the "
                    f"leading extent to be {self.nproc}",
                    target.loc,
                )
            mask = _align_mask(self._mask, region.ndim)
            array.data[index] = np.where(mask, value, region)
            return
        # Scalar element under a partial mask: legal only when uniform.
        if self._uniform_bool(self._mask, "mask for scalar element store"):
            array.data[index] = value

    def _scatter(self, array: FArray, subs: list, value, target: ast.ArrayRef) -> None:
        """Per-PE indirect store ``a(v1, v2, ...) = value`` on active lanes."""
        lanes = _lane_mask(self._mask, self.nproc)
        index = []
        for dim, sub in enumerate(subs):
            if isinstance(sub, slice):
                raise InterpreterError(
                    f"cannot mix sections and vector subscripts on '{array.name}'",
                    target.loc,
                )
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(self.nproc, int(arr))
            if arr.shape[0] != self.nproc:
                raise InterpreterError(
                    f"vector subscript of '{array.name}' has length "
                    f"{arr.shape[0]}, expected {self.nproc}",
                    target.loc,
                )
            active_vals = arr[lanes]
            array.check_subscript(dim, active_vals) if active_vals.size else None
            index.append(arr[lanes] - 1)
        self.counters.record("scatter", width=self.nproc, layers=1, mask=lanes)
        new = np.asarray(coerce(value))
        if new.ndim == 0:
            new = np.full(self.nproc, new.item())
        mask2d = self._mask
        if isinstance(mask2d, np.ndarray) and mask2d.ndim > 1:
            raise InterpreterError(
                "vector-subscripted store under a layered mask is not supported",
                target.loc,
            )
        array.data[tuple(index)] = new[lanes]

    # control flow ----------------------------------------------------------------------

    def _exec_do(self, stmt: ast.Do, env: dict) -> None:
        lo = self._uniform_int(self.eval(stmt.lo, env), "DO lower bound")
        hi = self._uniform_int(self.eval(stmt.hi, env), "DO upper bound")
        stride = (
            self._uniform_int(self.eval(stmt.stride, env), "DO stride")
            if stmt.stride is not None
            else 1
        )
        if stride == 0:
            raise InterpreterError("DO stride is zero", stmt.loc)
        trips = max(0, (hi - lo + stride) // stride)
        env[stmt.var] = lo
        value = lo
        for _ in range(trips):
            env[stmt.var] = value
            self.counters.record("acu")
            try:
                self.exec_body(stmt.body, env)
            except LoopExit:
                break
            except LoopCycle:
                pass
            value += stride
        else:
            env[stmt.var] = value

    def _exec_dowhile(self, stmt: ast.DoWhile, env: dict) -> None:
        self._run_while(stmt.cond, stmt.body, env, "DO WHILE condition")

    def _exec_while(self, stmt: ast.While, env: dict) -> None:
        self._run_while(stmt.cond, stmt.body, env, "WHILE condition")

    def _run_while(self, cond_expr: ast.Expr, body, env: dict, what: str) -> None:
        while True:
            cond = self.eval(cond_expr, env)
            self.counters.record("acu")
            if not self._uniform_bool(cond, what):
                return
            try:
                self.exec_body(body, env)
            except LoopExit:
                return
            except LoopCycle:
                continue

    def _exec_if(self, stmt: ast.If, env: dict) -> None:
        cond = self.eval(stmt.cond, env)
        self.counters.record("acu")
        if self._uniform_bool(cond, "IF condition"):
            self.exec_body(stmt.then_body, env)
        else:
            self.exec_body(stmt.else_body, env)

    def _exec_where(self, stmt: ast.Where, env: dict) -> None:
        cond = self.eval(stmt.mask, env)
        self.counters.record("mask", width=self.nproc, mask=self.lanes_active)
        outer = self._mask
        self._mask = self._combine(outer, cond)
        self._mask_frames.append(outer)
        try:
            self.exec_body(stmt.then_body, env)
        finally:
            self._mask_frames.pop()
            self._mask = outer
        if stmt.else_body:
            self.counters.record("mask", width=self.nproc, mask=self.lanes_active)
            self._mask = self._combine(outer, apply_unop(".NOT.", cond))
            self._mask_frames.append(outer)
            try:
                self.exec_body(stmt.else_body, env)
            finally:
                self._mask_frames.pop()
                self._mask = outer

    def _exec_forall(self, stmt: ast.Forall, env: dict) -> None:
        lo = self._uniform_int(self.eval(stmt.lo, env), "FORALL lower bound")
        hi = self._uniform_int(self.eval(stmt.hi, env), "FORALL upper bound")
        extent = hi - lo + 1
        if extent == self.nproc:
            # Lane-parallel FORALL: the index becomes the PE iota vector.
            saved = env.get(stmt.var)
            env[stmt.var] = np.arange(lo, hi + 1, dtype=np.int64)
            outer = self._mask
            if stmt.mask is not None:
                cond = self.eval(stmt.mask, env)
                self.counters.record("mask", width=self.nproc, mask=self.lanes_active)
                self._mask = self._combine(outer, cond)
                self._mask_frames.append(outer)
            try:
                self.exec_body(stmt.body, env)
            finally:
                if stmt.mask is not None:
                    self._mask_frames.pop()
                self._mask = outer
                if saved is not None:
                    env[stmt.var] = saved
            return
        for value in range(lo, hi + 1):
            env[stmt.var] = value
            self.counters.record("acu")
            if stmt.mask is not None and not self._uniform_bool(
                self.eval(stmt.mask, env), "FORALL mask"
            ):
                continue
            self.exec_body(stmt.body, env)

    def _exec_goto(self, stmt: ast.Goto, env: dict) -> None:
        if not bool(np.all(self._mask)):
            raise InterpreterError(
                "GOTO under a partial mask would diverge the single SIMD "
                "program counter",
                stmt.loc,
            )
        self.counters.record("acu")
        raise GotoSignal(stmt.target)

    def _exec_continue(self, stmt, env) -> None:
        pass

    def _exec_exitstmt(self, stmt, env) -> None:
        if not bool(np.all(self._mask)):
            raise InterpreterError("EXIT under a partial mask", stmt.loc)
        raise LoopExit()

    def _exec_cyclestmt(self, stmt, env) -> None:
        if not bool(np.all(self._mask)):
            raise InterpreterError("CYCLE under a partial mask", stmt.loc)
        raise LoopCycle()

    def _exec_return(self, stmt, env) -> None:
        raise ReturnSignal()

    def _exec_stop(self, stmt, env) -> None:
        raise StopSignal()

    def _exec_callstmt(self, stmt: ast.CallStmt, env: dict) -> None:
        external = self.externals.get(stmt.name)
        if external is not None:
            # Output arguments may be unset before the call — pass None.
            args = [
                env.get(arg.name)
                if isinstance(arg, ast.Var) and arg.name not in env
                else self.eval(arg, env)
                for arg in stmt.args
            ]
            layers = max((self._layers_of(a) for a in args), default=1)
            self.counters.record_call(stmt.name, layers=layers, mask=self.lanes_active)
            external(self, stmt.args, args, env, self._mask)
            return
        routine = self._routines.get(stmt.name)
        if routine is None:
            raise InterpreterError(f"CALL to unknown subroutine '{stmt.name}'", stmt.loc)
        if len(routine.params) != len(stmt.args):
            raise InterpreterError(f"CALL {stmt.name}: arity mismatch", stmt.loc)
        self.counters.record("acu")
        callee_env: dict = {}
        writeback: list[tuple[str, ast.Expr]] = []
        for param, arg in zip(routine.params, stmt.args):
            value = self.eval(arg, env)
            callee_env[param] = value
            if not isinstance(value, FArray) and isinstance(
                arg, (ast.Var, ast.ArrayRef)
            ):
                writeback.append((param, arg))
        try:
            self.exec_body(routine.body, callee_env)
        except ReturnSignal:
            pass
        for param, arg in writeback:
            self.assign_to(arg, callee_env[param], env)

    # expressions --------------------------------------------------------------------------

    def eval(self, expr: ast.Expr, env: dict):
        """Evaluate an expression; results are valid on active lanes."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name not in env:
                raise InterpreterError(
                    f"'{expr.name}' used before assignment", expr.loc
                )
            return env[expr.name]
        if isinstance(expr, ast.ArrayRef):
            return self._eval_arrayref(expr, env)
        if isinstance(expr, ast.Call):
            args = [self.eval(arg, env) for arg in expr.args]
            if is_reduction_call(expr.name, len(args)):
                self.counters.record("reduce", width=self.nproc, mask=self.lanes_active)
                return call_intrinsic(expr.name, args, mask=self.lanes_active)
            layers = max((self._layers_of(a) for a in args), default=1)
            self.counters.record(
                "real_op", width=self.nproc, layers=layers, mask=self.lanes_active
            )
            return call_intrinsic(expr.name, args)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            result = apply_binop(expr.op, left, right)
            self.counters.record(
                op_event_kind(expr.op, result),
                width=self.nproc,
                layers=self._layers_of(result),
                mask=self.lanes_active,
            )
            return result
        if isinstance(expr, ast.UnOp):
            operand = self.eval(expr.operand, env)
            result = apply_unop(expr.op, operand)
            self.counters.record(
                op_event_kind(expr.op, result),
                width=self.nproc,
                layers=self._layers_of(result),
                mask=self.lanes_active,
            )
            return result
        if isinstance(expr, ast.VectorLit):
            items = [self.eval(item, env) for item in expr.items]
            vec = np.array([coerce(i) for i in items])
            if vec.shape[0] != self.nproc:
                raise InterpreterError(
                    f"vector literal has {vec.shape[0]} elements, "
                    f"machine has {self.nproc} PEs",
                    expr.loc,
                )
            return vec
        if isinstance(expr, ast.RangeVec):
            lo = self._uniform_int(self.eval(expr.lo, env), "range lower bound")
            hi = self._uniform_int(self.eval(expr.hi, env), "range upper bound")
            vec = np.arange(lo, hi + 1, dtype=np.int64)
            if vec.shape[0] != self.nproc:
                raise InterpreterError(
                    f"range vector [{lo} : {hi}] has {vec.shape[0]} elements, "
                    f"machine has {self.nproc} PEs",
                    expr.loc,
                )
            return vec
        raise InterpreterError(f"cannot evaluate {type(expr).__name__} here", expr.loc)

    def _eval_subscript(self, sub: ast.Expr, env: dict):
        if isinstance(sub, ast.Slice):
            lo = (
                self._uniform_int(self.eval(sub.lo, env), "section lower bound")
                if sub.lo is not None
                else 1
            )
            hi = (
                self._uniform_int(self.eval(sub.hi, env), "section upper bound")
                if sub.hi is not None
                else None
            )
            return slice(lo - 1, hi)
        value = self.eval(sub, env)
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            return value
        return self._uniform_int(value, "subscript")

    def _eval_arrayref(self, expr: ast.ArrayRef, env: dict):
        array = env.get(expr.name)
        subs = [self._eval_subscript(s, env) for s in expr.subs]
        if isinstance(array, FArray):
            if any(isinstance(s, np.ndarray) and s.ndim >= 1 for s in subs):
                return self._gather(array, subs, expr)
            # No active lane consumes this load; clamp instead of trap.
            index = array.np_index(subs, clamp=not self.lanes_active.any())
            result = array.data[index]
            if isinstance(result, np.ndarray):
                return result.copy()
            return result
        if isinstance(array, np.ndarray):
            # Subscripting a replicated per-PE value: a(i) with vector i
            # means lane p reads element i_p of its own copy — but a
            # replicated scalar has no extent; treat 1-D values as a
            # distributed vector of length P.
            if array.ndim == 1 and len(subs) == 1:
                sub = subs[0]
                if isinstance(sub, slice):
                    return array[sub].copy()
                return self._gather_plain(array, sub, expr)
            raise InterpreterError(
                f"'{expr.name}' is replicated, not an array", expr.loc
            )
        raise InterpreterError(f"'{expr.name}' is not an array", expr.loc)

    def _gather(self, array: FArray, subs: list, expr: ast.ArrayRef):
        """Per-PE indirect load; inactive lanes produce clamped garbage."""
        lanes = _lane_mask(self._mask, self.nproc)
        index = []
        for dim, sub in enumerate(subs):
            if isinstance(sub, slice):
                raise InterpreterError(
                    f"cannot mix sections and vector subscripts on '{array.name}'",
                    expr.loc,
                )
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(self.nproc, int(arr))
            if arr.shape[0] != self.nproc:
                raise InterpreterError(
                    f"vector subscript of '{array.name}' has length "
                    f"{arr.shape[0]}, expected {self.nproc}",
                    expr.loc,
                )
            if lanes.any():
                array.check_subscript(dim, arr[lanes])
            clamped = np.clip(arr, 1, max(1, array.shape[dim]))
            index.append(clamped - 1)
        self.counters.record("gather", width=self.nproc, layers=1, mask=lanes)
        return array.data[tuple(index)]

    def _gather_plain(self, array: np.ndarray, sub, expr: ast.ArrayRef):
        lanes = _lane_mask(self._mask, self.nproc)
        arr = np.asarray(sub)
        if arr.ndim == 0:
            self.counters.record("gather", width=self.nproc, layers=1, mask=lanes)
            idx = int(arr)
            if not 1 <= idx <= array.shape[0]:
                if lanes.any():
                    raise OutOfBoundsFault(
                        f"subscript {idx} out of bounds for '{expr.name}'", expr.loc
                    )
                idx = min(max(idx, 1), array.shape[0])
            return array[idx - 1]
        if lanes.any():
            active = arr[lanes]
            if np.any((active < 1) | (active > array.shape[0])):
                raise OutOfBoundsFault(
                    f"subscript out of bounds for '{expr.name}'", expr.loc
                )
        clamped = np.clip(arr, 1, array.shape[0])
        self.counters.record("gather", width=self.nproc, layers=1, mask=lanes)
        return array[clamped - 1]

    def _layers_of(self, value) -> int:
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 2:
            return int(np.prod(value.shape[1:]))
        if isinstance(value, FArray):
            return max(1, value.size // max(1, self.nproc))
        return 1


def run_simd_program(
    source: ast.SourceFile,
    nproc: int,
    bindings: dict | None = None,
    externals: dict | None = None,
    statement_hook=None,
):
    """Run a program on a ``nproc``-PE lockstep machine.

    .. deprecated::
        Use :func:`repro.run` (``repro.run(source, nproc=p)``) or an
        explicit :class:`repro.Engine`.  This shim will be removed in
        version 2.0.
    """
    import warnings

    warnings.warn(
        "run_simd_program() is deprecated; use repro.run(source, nproc=...) "
        "or Engine.compile(...).run(...) — removal planned for 2.0",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..runtime.engine import default_engine

    return default_engine().compile(source).run(
        bindings,
        nproc=nproc,
        backend="interpreter",
        externals=externals,
        statement_hook=statement_hook,
    )
