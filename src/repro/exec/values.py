"""Runtime value model shared by the MiniF interpreters.

Values are:

* Python/numpy scalars — host (front-end / ACU) values;
* 1-D numpy arrays of length ``P`` — per-processor replicated values
  in the SIMD interpreter (the paper's default for F90simd scalars);
* 2-D numpy arrays of shape ``(P, k)`` — sections of arrays whose
  trailing dimension is laid out serially in PE memory (the paper's
  "memory layers");
* :class:`FArray` — a declared Fortran array with 1-based indexing.
"""

from __future__ import annotations

import numpy as np

from ..lang.errors import InterpreterError
from ..reliability.errors import OutOfBoundsFault

#: numpy dtypes for the MiniF base types.
DTYPES = {
    "integer": np.int64,
    "real": np.float64,
    "logical": np.bool_,
}


def dtype_for(base_type: str):
    """The numpy dtype for a MiniF base type name."""
    try:
        return DTYPES[base_type]
    except KeyError:
        raise InterpreterError(f"unknown base type '{base_type}'") from None


class FArray:
    """A Fortran array: 1-based indexing over a fixed shape.

    The underlying storage is a numpy array of the same shape; helper
    methods translate Fortran subscripts (scalars, vectors of lane
    indices, or slices) into numpy indexing.
    """

    __slots__ = ("name", "shape", "data")

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        base_type: str = "real",
        *,
        fill: bool = True,
    ):
        for extent in shape:
            if extent < 0:
                raise InterpreterError(f"array '{name}' has negative extent {extent}")
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        dtype = dtype_for(base_type)
        # ``fill=False`` skips the zero fill for callers that overwrite
        # every element immediately (e.g. interpreter DECLs with a full
        # binding) — large pairlists would otherwise be touched twice.
        self.data = (
            np.zeros(self.shape, dtype=dtype) if fill else np.empty(self.shape, dtype)
        )

    @classmethod
    def wrap(cls, name: str, data: np.ndarray) -> "FArray":
        """Adopt ``data`` as the storage of a new FArray — no copy.

        The caller transfers ownership: binding a wrapped array to a
        kernel means the kernel reads (and writes!) the caller's
        buffer directly, skipping the defensive copy a plain-ndarray
        binding gets at DECL.  Use for large read-only inputs such as
        pairlists.
        """
        array = cls.__new__(cls)
        array.name = name
        array.shape = tuple(int(s) for s in data.shape)
        array.data = data
        return array

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return self.data.size

    def check_subscript(self, dim: int, index) -> None:
        """Bounds-check a (scalar or vector) 1-based subscript."""
        extent = self.shape[dim]
        idx = np.asarray(index)
        if idx.size == 0:
            return
        if idx.ndim:
            # min/max reductions allocate nothing; the offender scan
            # only runs on the error path.
            if int(idx.min()) >= 1 and int(idx.max()) <= extent:
                return
            bad = (idx < 1) | (idx > extent)
            offender = int(idx.flat[np.argmax(bad)])
        else:
            offender = int(idx)
            if 1 <= offender <= extent:
                return
        raise OutOfBoundsFault(
            f"subscript {offender} out of bounds for dimension "
            f"{dim + 1} of '{self.name}' (extent {extent})"
        )

    def np_index(self, subs: list, clamp: bool = False) -> tuple:
        """Translate checked 1-based subscripts into a numpy index tuple.

        With ``clamp=True``, out-of-range subscripts are clamped into
        the extent instead of raising.  A lockstep machine still
        *issues* WHERE-masked statements when every lane is inactive;
        the addresses such an issue computes may be garbage and must
        not trap (no active PE consumes the load, and masked stores
        write nothing).  Zero-extent dimensions cannot be clamped and
        keep the checked behaviour.
        """
        if len(subs) != self.rank:
            raise InterpreterError(
                f"'{self.name}' has rank {self.rank}, got {len(subs)} subscripts"
            )
        out = []
        for dim, sub in enumerate(subs):
            if isinstance(sub, slice):
                out.append(sub)
            elif clamp and self.shape[dim] >= 1:
                arr = np.asarray(sub)
                clamped = np.clip(arr, 1, self.shape[dim])
                out.append(clamped - 1 if arr.ndim else int(clamped) - 1)
            else:
                self.check_subscript(dim, sub)
                arr = np.asarray(sub)
                out.append(arr - 1 if arr.ndim else int(arr) - 1)
        return tuple(out)

    def __repr__(self) -> str:
        return f"FArray({self.name!r}, shape={self.shape})"


def is_vector(value) -> bool:
    """True for per-PE vector values (1-D numpy arrays)."""
    return isinstance(value, np.ndarray) and value.ndim >= 1


def as_bool_scalar(value, what: str = "condition"):
    """Coerce a value to a host boolean; vectors must be uniform.

    Implements the paper's rule that a WHILE may be controlled by an
    array of booleans only when all elements are guaranteed equal.
    """
    if isinstance(value, np.ndarray):
        if value.size == 0:
            raise InterpreterError(f"{what} is empty")
        first = value.flat[0]
        if not np.all(value == first):
            raise InterpreterError(
                f"{what} is vector-valued with differing elements; "
                "use ANY()/ALL() or a WHERE guard"
            )
        return bool(first)
    return bool(value)


def as_int_scalar(value, what: str = "value") -> int:
    """Coerce to a host integer; vectors must be uniform (ACU requirement)."""
    if isinstance(value, np.ndarray):
        first = value.flat[0]
        if not np.all(value == first):
            raise InterpreterError(
                f"{what} must be uniform across processors on a SIMD machine"
            )
        return int(first)
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and not float(value).is_integer():
        raise InterpreterError(f"{what} is not an integer: {value}")
    return int(value)


def element_width(value) -> int:
    """Number of scalar elements an operation over ``value`` touches."""
    if isinstance(value, np.ndarray):
        return int(value.size)
    return 1


def serial_layers(value) -> int:
    """How many serial memory layers a value spans (trailing dims)."""
    if isinstance(value, np.ndarray) and value.ndim >= 2:
        layers = 1
        for extent in value.shape[1:]:
            layers *= extent
        return layers
    return 1
