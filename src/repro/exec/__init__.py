"""Execution engines: sequential (F77), MIMD, and lockstep SIMD.

The three interpreters implement the three execution levels of the
paper's Section 2 language family and share one value model, one
intrinsic registry, and one event-accounting scheme.
"""

from .counters import EVENT_KINDS, ExecutionCounters
from .intrinsics import call_intrinsic
from .mimd import MIMDResult, MIMDSimulator, run_mimd_program
from .scalar import ScalarInterpreter, run_program
from .simd import SIMDInterpreter, run_simd_program
from .values import FArray

__all__ = [
    "ExecutionCounters",
    "EVENT_KINDS",
    "FArray",
    "call_intrinsic",
    "ScalarInterpreter",
    "run_program",
    "SIMDInterpreter",
    "run_simd_program",
    "MIMDSimulator",
    "MIMDResult",
    "run_mimd_program",
]
