"""Execution engines: sequential (F77), MIMD, lockstep SIMD, and SPMD.

The interpreters implement the execution levels of the paper's
Section 2 language family and share one value model, one intrinsic
registry, and one event-accounting scheme.  The MIMD level exists
twice: :class:`MIMDSimulator` models Eq. 1 in-process, while
:class:`PMIMDExecutor` runs the same per-processor programs across a
supervised pool of real worker processes.
"""

from .counters import EVENT_KINDS, ExecutionCounters
from .intrinsics import call_intrinsic
from .mimd import MIMDResult, MIMDSimulator, run_mimd_program
from .pmimd import (
    PMIMDExecutor,
    PMIMDResult,
    Shard,
    plan_shards,
    replicate_bindings,
)
from .scalar import ScalarInterpreter, run_program
from .shm import SharedArraySpec, ShmArena
from .simd import SIMDInterpreter, run_simd_program
from .values import FArray

__all__ = [
    "ExecutionCounters",
    "EVENT_KINDS",
    "FArray",
    "call_intrinsic",
    "ScalarInterpreter",
    "run_program",
    "SIMDInterpreter",
    "run_simd_program",
    "MIMDSimulator",
    "MIMDResult",
    "run_mimd_program",
    "PMIMDExecutor",
    "PMIMDResult",
    "Shard",
    "SharedArraySpec",
    "ShmArena",
    "plan_shards",
    "replicate_bindings",
]
