"""Control-flow signals used internally by the interpreters."""

from __future__ import annotations


class ControlSignal(Exception):
    """Base class for non-error control transfers."""


class GotoSignal(ControlSignal):
    """Raised by GOTO; caught by the statement list holding the label."""

    def __init__(self, target: int):
        super().__init__(f"goto {target}")
        self.target = target


class LoopExit(ControlSignal):
    """Raised by EXIT; caught by the innermost loop."""


class LoopCycle(ControlSignal):
    """Raised by CYCLE; caught by the innermost loop."""


class ReturnSignal(ControlSignal):
    """Raised by RETURN; caught by the routine invocation."""


class StopSignal(ControlSignal):
    """Raised by STOP; terminates the program run."""
