"""Operation accounting shared by the interpreters.

Interpreters do not know about machines; they record *events*
(vector instructions, broken down by kind, lane width, serial memory
layers and activity mask).  Machine cost models
(:mod:`repro.simd.cost`) later price the events into cycles and
seconds.

Event kinds:

===========  ================================================================
``int_op``   elementwise integer arithmetic / comparison
``real_op``  elementwise floating-point arithmetic / comparison
``logical``  elementwise boolean operation
``store``    assignment store
``gather``   indirect load (vector-subscripted read)
``scatter``  indirect store (vector-subscripted write)
``reduce``   cross-processor reduction (ANY, MAXVAL, ...)
``mask``     WHERE mask manipulation
``acu``      scalar control work on the front end / array control unit
``call``     subroutine call overhead
===========  ================================================================
"""

from __future__ import annotations

from collections import Counter

import numpy as np

#: All event kinds an interpreter may record.
EVENT_KINDS = (
    "int_op",
    "real_op",
    "logical",
    "store",
    "gather",
    "scatter",
    "reduce",
    "mask",
    "acu",
    "call",
)


class ExecutionCounters:
    """Accumulates execution events for one program run.

    Attributes:
        nproc: Lane count (1 for the sequential interpreter).
        events: vector-instruction count per kind.
        layer_steps: vector instructions weighted by serial layers —
            the lockstep *step* count of the run.
        element_ops: total scalar elements processed per kind.
        active_elements: elements on *active* lanes per kind (useful work).
        calls: per external-routine vector call count.
        call_layer_steps: per-routine calls weighted by layers.
        lane_active_steps: per-lane count of steps in which the lane
            was active (for utilization plots).
    """

    def __init__(self, nproc: int = 1):
        self.nproc = nproc
        self.events: Counter[str] = Counter()
        self.layer_steps: Counter[str] = Counter()
        self.element_ops: Counter[str] = Counter()
        self.active_elements: Counter[str] = Counter()
        self.calls: Counter[str] = Counter()
        self.call_layer_steps: Counter[str] = Counter()
        self.section_events: Counter[str] = Counter()
        self.section_layer_steps: Counter[str] = Counter()
        self.lane_active_steps = np.zeros(nproc, dtype=np.int64)

    # -- recording -------------------------------------------------------------

    def record(
        self,
        kind: str,
        width: int = 1,
        layers: int = 1,
        mask=None,
        active: int | None = None,
        defer_lanes: bool = False,
    ) -> int:
        """Record one vector instruction.

        Args:
            kind: One of :data:`EVENT_KINDS`.
            width: Lane width of the instruction (P for vector ops, 1
                for front-end scalar work).
            layers: Serial memory layers the instruction sweeps; a
                section op over ``k`` layers counts as ``k`` lockstep steps.
            mask: Current activity mask (bool array of ``nproc``), or
                None when all lanes are active / activity is unknown.
            active: Precomputed active-lane count; skips the
                ``count_nonzero`` reduction when the caller caches it
                per mask epoch.
            defer_lanes: Skip the per-lane activity update; the caller
                accumulates the returned layer count and applies it via
                :meth:`add_lane_steps` when the mask changes.

        Returns:
            The layers this event contributes to per-lane activity
            (0 for front-end ``acu`` work) — the amount a deferring
            caller must accumulate.
        """
        self.events[kind] += 1
        self.layer_steps[kind] += layers
        self.element_ops[kind] += width * layers
        if layers > 1:
            self.section_events[kind] += 1
            self.section_layer_steps[kind] += layers
        if active is None:
            active = width if mask is None else int(np.count_nonzero(mask))
        self.active_elements[kind] += active * layers
        if kind == "acu":
            return 0
        if not defer_lanes and mask is not None:
            self.lane_active_steps += np.asarray(mask, dtype=np.int64) * layers
        return layers

    def record_block(
        self,
        events,
        width: int = 1,
        mask=None,
        active: int | None = None,
        defer_lanes: bool = False,
    ) -> int:
        """Record a batch of vector instructions that share one mask.

        ``events`` is a sequence of ``(kind, layers)`` pairs.  The VM's
        superinstruction path collects one pair per component of a fused
        run — the activity mask cannot change inside a run, so the mask
        reduction (``count_nonzero``) and the per-lane activity update
        are paid **once per run** instead of once per instruction.  The
        resulting totals are exactly what per-event :meth:`record` calls
        would have produced.  ``active``/``defer_lanes`` behave as in
        :meth:`record`; the return value is the batch's per-lane
        activity contribution.
        """
        if not events:
            return 0
        if active is None:
            active = width if mask is None else int(np.count_nonzero(mask))
        events_c = self.events
        layer_steps = self.layer_steps
        element_ops = self.element_ops
        active_elements = self.active_elements
        total_layers = 0
        for kind, layers in events:
            events_c[kind] += 1
            layer_steps[kind] += layers
            element_ops[kind] += width * layers
            if layers > 1:
                self.section_events[kind] += 1
                self.section_layer_steps[kind] += layers
            active_elements[kind] += active * layers
            if kind != "acu":
                total_layers += layers
        if not defer_lanes and mask is not None and total_layers:
            self.lane_active_steps += np.asarray(mask, dtype=np.int64) * total_layers
        return total_layers

    def add_lane_steps(self, mask, layers: int) -> None:
        """Apply deferred per-lane activity for a whole mask epoch.

        Counterpart of ``defer_lanes=True``: a caller that runs many
        instructions under one unchanged mask accumulates their layer
        counts and applies them in a single vector update here.  The
        totals are exactly what per-event updates would have produced.
        """
        if layers:
            self.lane_active_steps += np.asarray(mask, dtype=np.int64) * layers

    def record_call(self, name: str, layers: int = 1, mask=None) -> None:
        """Record one (vector) call of an external routine such as Force."""
        self.calls[name] += 1
        self.call_layer_steps[name] += layers
        self.record("call", width=self.nproc, layers=layers, mask=mask)

    def call_sections(self, name: str) -> tuple[int, int]:
        """(section call count, section layer steps) for routine ``name``.

        A call is a *section* call when it swept more than one memory
        layer; the pair mirrors :attr:`section_events` /
        :attr:`section_layer_steps` for the ``call`` kind but broken
        down by routine.
        """
        calls = self.calls.get(name, 0)
        layer_steps = self.call_layer_steps.get(name, 0)
        if layer_steps > calls:
            return calls, layer_steps
        return 0, 0

    # -- queries ---------------------------------------------------------------

    @property
    def total_steps(self) -> int:
        """Total lockstep steps (vector instructions × layers)."""
        return sum(self.layer_steps.values())

    @property
    def total_vector_instructions(self) -> int:
        return sum(self.events.values())

    def utilization(self) -> np.ndarray:
        """Fraction of steps each lane was active (zeros if nothing ran)."""
        steps = self.total_steps
        if steps == 0:
            return np.zeros(self.nproc)
        return self.lane_active_steps / steps

    def mean_utilization(self) -> float:
        """Average activity fraction across lanes."""
        return float(self.utilization().mean())

    def merge(self, other: "ExecutionCounters") -> None:
        """Fold another counter set into this one (same lane count)."""
        self.events.update(other.events)
        self.layer_steps.update(other.layer_steps)
        self.element_ops.update(other.element_ops)
        self.active_elements.update(other.active_elements)
        self.calls.update(other.calls)
        self.call_layer_steps.update(other.call_layer_steps)
        self.section_events.update(other.section_events)
        self.section_layer_steps.update(other.section_layer_steps)
        if other.nproc == self.nproc:
            self.lane_active_steps += other.lane_active_steps

    def state_dict(self) -> dict:
        """Complete, detached accumulator state for checkpointing.

        Everything :meth:`load_state` needs to make another instance
        bit-identical to this one — unlike :meth:`summary`, which is a
        human-facing digest.
        """
        return {
            "nproc": self.nproc,
            "events": dict(self.events),
            "layer_steps": dict(self.layer_steps),
            "element_ops": dict(self.element_ops),
            "active_elements": dict(self.active_elements),
            "calls": dict(self.calls),
            "call_layer_steps": dict(self.call_layer_steps),
            "section_events": dict(self.section_events),
            "section_layer_steps": dict(self.section_layer_steps),
            "lane_active_steps": self.lane_active_steps.copy(),
        }

    def load_state(self, state: dict) -> None:
        """Replace this accumulator's contents with a state dict's.

        Inverse of :meth:`state_dict`; used by checkpoint resume so a
        resumed run's counters continue from exactly the captured
        totals.
        """
        self.nproc = int(state["nproc"])
        self.events = Counter(state["events"])
        self.layer_steps = Counter(state["layer_steps"])
        self.element_ops = Counter(state["element_ops"])
        self.active_elements = Counter(state["active_elements"])
        self.calls = Counter(state["calls"])
        self.call_layer_steps = Counter(state["call_layer_steps"])
        self.section_events = Counter(state["section_events"])
        self.section_layer_steps = Counter(state["section_layer_steps"])
        self.lane_active_steps = np.array(
            state["lane_active_steps"], dtype=np.int64
        )

    def summary(self) -> dict:
        """A plain-dict snapshot (handy for reports and tests)."""
        return {
            "total_steps": self.total_steps,
            "vector_instructions": self.total_vector_instructions,
            "events": dict(self.events),
            "layer_steps": dict(self.layer_steps),
            "calls": dict(self.calls),
            "call_layer_steps": dict(self.call_layer_steps),
            "mean_utilization": self.mean_utilization(),
        }
