"""Operation accounting shared by the interpreters.

Interpreters do not know about machines; they record *events*
(vector instructions, broken down by kind, lane width, serial memory
layers and activity mask).  Machine cost models
(:mod:`repro.simd.cost`) later price the events into cycles and
seconds.

Event kinds:

===========  ================================================================
``int_op``   elementwise integer arithmetic / comparison
``real_op``  elementwise floating-point arithmetic / comparison
``logical``  elementwise boolean operation
``store``    assignment store
``gather``   indirect load (vector-subscripted read)
``scatter``  indirect store (vector-subscripted write)
``reduce``   cross-processor reduction (ANY, MAXVAL, ...)
``mask``     WHERE mask manipulation
``acu``      scalar control work on the front end / array control unit
``call``     subroutine call overhead
===========  ================================================================
"""

from __future__ import annotations

from collections import Counter

import numpy as np

#: All event kinds an interpreter may record.
EVENT_KINDS = (
    "int_op",
    "real_op",
    "logical",
    "store",
    "gather",
    "scatter",
    "reduce",
    "mask",
    "acu",
    "call",
)


class ExecutionCounters:
    """Accumulates execution events for one program run.

    Attributes:
        nproc: Lane count (1 for the sequential interpreter).
        events: vector-instruction count per kind.
        layer_steps: vector instructions weighted by serial layers —
            the lockstep *step* count of the run.
        element_ops: total scalar elements processed per kind.
        active_elements: elements on *active* lanes per kind (useful work).
        calls: per external-routine vector call count.
        call_layer_steps: per-routine calls weighted by layers.
        lane_active_steps: per-lane count of steps in which the lane
            was active (for utilization plots).
    """

    def __init__(self, nproc: int = 1):
        self.nproc = nproc
        self.events: Counter[str] = Counter()
        self.layer_steps: Counter[str] = Counter()
        self.element_ops: Counter[str] = Counter()
        self.active_elements: Counter[str] = Counter()
        self.calls: Counter[str] = Counter()
        self.call_layer_steps: Counter[str] = Counter()
        self.section_events: Counter[str] = Counter()
        self.section_layer_steps: Counter[str] = Counter()
        self.lane_active_steps = np.zeros(nproc, dtype=np.int64)

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, width: int = 1, layers: int = 1, mask=None) -> None:
        """Record one vector instruction.

        Args:
            kind: One of :data:`EVENT_KINDS`.
            width: Lane width of the instruction (P for vector ops, 1
                for front-end scalar work).
            layers: Serial memory layers the instruction sweeps; a
                section op over ``k`` layers counts as ``k`` lockstep steps.
            mask: Current activity mask (bool array of ``nproc``), or
                None when all lanes are active / activity is unknown.
        """
        self.events[kind] += 1
        self.layer_steps[kind] += layers
        self.element_ops[kind] += width * layers
        if layers > 1:
            self.section_events[kind] += 1
            self.section_layer_steps[kind] += layers
        if mask is None:
            active = width
        else:
            active = int(np.count_nonzero(mask))
        self.active_elements[kind] += active * layers
        if mask is not None and kind != "acu":
            self.lane_active_steps += np.asarray(mask, dtype=np.int64) * layers

    def record_call(self, name: str, layers: int = 1, mask=None) -> None:
        """Record one (vector) call of an external routine such as Force."""
        self.calls[name] += 1
        self.call_layer_steps[name] += layers
        self.record("call", width=self.nproc, layers=layers, mask=mask)

    def call_sections(self, name: str) -> tuple[int, int]:
        """(section call count, section layer steps) for routine ``name``.

        A call is a *section* call when it swept more than one memory
        layer; the pair mirrors :attr:`section_events` /
        :attr:`section_layer_steps` for the ``call`` kind but broken
        down by routine.
        """
        calls = self.calls.get(name, 0)
        layer_steps = self.call_layer_steps.get(name, 0)
        if layer_steps > calls:
            return calls, layer_steps
        return 0, 0

    # -- queries ---------------------------------------------------------------

    @property
    def total_steps(self) -> int:
        """Total lockstep steps (vector instructions × layers)."""
        return sum(self.layer_steps.values())

    @property
    def total_vector_instructions(self) -> int:
        return sum(self.events.values())

    def utilization(self) -> np.ndarray:
        """Fraction of steps each lane was active (zeros if nothing ran)."""
        steps = self.total_steps
        if steps == 0:
            return np.zeros(self.nproc)
        return self.lane_active_steps / steps

    def mean_utilization(self) -> float:
        """Average activity fraction across lanes."""
        return float(self.utilization().mean())

    def merge(self, other: "ExecutionCounters") -> None:
        """Fold another counter set into this one (same lane count)."""
        self.events.update(other.events)
        self.layer_steps.update(other.layer_steps)
        self.element_ops.update(other.element_ops)
        self.active_elements.update(other.active_elements)
        self.calls.update(other.calls)
        self.call_layer_steps.update(other.call_layer_steps)
        self.section_events.update(other.section_events)
        self.section_layer_steps.update(other.section_layer_steps)
        if other.nproc == self.nproc:
            self.lane_active_steps += other.lane_active_steps

    def summary(self) -> dict:
        """A plain-dict snapshot (handy for reports and tests)."""
        return {
            "total_steps": self.total_steps,
            "vector_instructions": self.total_vector_instructions,
            "events": dict(self.events),
            "layer_steps": dict(self.layer_steps),
            "calls": dict(self.calls),
            "call_layer_steps": dict(self.call_layer_steps),
            "mean_utilization": self.mean_utilization(),
        }
