"""Command-line driver for the loop-flattening toolchain.

Usage::

    python -m repro check FILE            # parse + semantic check
    python -m repro lint FILE ...         # static analysis diagnostics
    python -m repro report FILE           # Section 6 verdicts per nest
    python -m repro flatten FILE          # print the flattened program
    python -m repro simdize FILE -p 8     # naive SIMDization baseline
    python -m repro run FILE -p 8 --bind l=4,1,2,1  # execute, show counters
    python -m repro fuzz --seed 0 -n 500  # differential fuzz the transforms
    python -m repro paper traces          # regenerate a paper exhibit

Array bindings are comma-separated numbers; scalars are plain numbers.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .analysis import evaluate_flattening
from .lang import check_source, format_source, parse_source
from .lang.errors import MiniFError
from .runtime.engine import default_engine
from .transform import (
    find_nest_sites,
    naive_simd_program,
    simplify_program,
    structurize_program,
)
from .transform.parallel import flatten_spmd


def _load(path: str):
    with open(path) as handle:
        return parse_source(handle.read(), filename=path)


def _parse_binding(text: str):
    name, _, value = text.partition("=")
    if not name or not value:
        raise argparse.ArgumentTypeError(
            f"binding must look like name=1,2,3 — got {text!r}"
        )
    parts = value.split(",")

    def number(token: str):
        token = token.strip()
        return float(token) if ("." in token or "e" in token.lower()) else int(token)

    if len(parts) == 1:
        return name.lower(), number(parts[0])
    return name.lower(), np.array([number(p) for p in parts])


def cmd_check(args) -> int:
    tree = _load(args.file)
    check_source(tree, externals=set(args.external or []))
    print(f"{args.file}: OK ({len(tree.units)} unit(s))")
    return 0


def _iter_minif_sources(path: str):
    """Yield ``(label, text)`` MiniF sources found in ``path``.

    A ``.py`` file contributes every module-level string constant that
    contains a PROGRAM or SUBROUTINE header — the convention the
    bundled kernels (:mod:`repro.kernels`) use to embed their MiniF
    texts — labelled ``path:NAME``.  Any other file is one MiniF
    source.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if not path.endswith(".py"):
        yield path, text
        return
    import ast as pyast

    module = pyast.parse(text, filename=path)
    for node in module.body:
        if not isinstance(node, pyast.Assign):
            continue
        value = node.value
        if not (isinstance(value, pyast.Constant) and isinstance(value.value, str)):
            continue
        upper = value.value.upper()
        if "PROGRAM" not in upper and "SUBROUTINE" not in upper:
            continue
        for target in node.targets:
            if isinstance(target, pyast.Name):
                yield f"{path}:{target.id}", value.value
                break


def cmd_lint(args) -> int:
    from .diag import DiagnosticReport, Severity, lint_source
    from .lang.errors import TransformError
    from .vm.compiler import compile_program
    from .vm.verify import verify_code

    report = DiagnosticReport()
    sources = 0
    dependence: dict[str, list] = {}
    for path in args.files:
        for label, text in _iter_minif_sources(path):
            sources += 1
            report.extend(lint_source(text, filename=label))
            if args.explain_deps:
                from .analysis.dep import explain_source

                dependence[label] = explain_source(text)
            if not args.no_verify:
                try:
                    code = compile_program(parse_source(text, filename=label))
                except (MiniFError, TransformError):
                    continue  # frontend findings already reported
                report.extend(verify_code(code))
    report = report.sorted()
    if args.format == "json":
        import json

        payload = {"sources": sources, **report.to_dict()}
        if args.explain_deps:
            payload["dependence"] = dependence
        print(json.dumps(payload, indent=2))
    else:
        if report:
            for diag in report:
                print(diag.render())
        if args.explain_deps:
            from .analysis.dep import render_explanations

            for label, nests in dependence.items():
                print(f"== dependence graphs: {label}")
                lines = render_explanations(nests)
                for line in lines:
                    print(line)
                if not lines:
                    print("  no counted loops")
        print(f"{sources} source(s): {report.summary()}")
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    return 1 if report.at_least(threshold) else 0


def cmd_report(args) -> int:
    tree = structurize_program(_load(args.file))
    sites = find_nest_sites(tree)
    if not sites:
        print("no flattenable loop nests found")
        return 1
    for index, site in enumerate(sites):
        report = evaluate_flattening(
            site.stmt,
            assume_parallel=args.assume_parallel,
            assume_min_trips=args.assume_min_trips,
        )
        print(f"nest #{index} in {site.routine}:")
        for reason in report.reasons:
            print("  *", reason)
        print(f"  => flatten? {report.recommended}  (cost: {report.cost})")
    return 0


def cmd_flatten(args) -> int:
    tree = _load(args.file)
    if args.nproc:
        structured = structurize_program(tree)
        sites = find_nest_sites(structured)
        if not sites:
            print("no flattenable loop nest found", file=sys.stderr)
            return 1
        site = sites[args.nest]
        replacement = flatten_spmd(
            site.stmt,
            nproc=args.nproc,
            layout=args.layout,
            variant=args.variant,
            assume_min_trips=args.assume_min_trips,
            simd=not args.no_simd,
        )
        unit = structured.unit(site.routine)
        unit.body[site.index:site.index + 1] = replacement
        if args.simplify:
            structured = simplify_program(structured)
        print(format_source(structured), end="")
        return 0
    out = default_engine().compile(
        tree,
        transform="flatten",
        variant=args.variant,
        assume_min_trips=args.assume_min_trips,
        simd=not args.no_simd,
        nest_index=args.nest,
    ).tree
    if args.simplify:
        out = simplify_program(out)
    print(format_source(out), end="")
    return 0


def cmd_simdize(args) -> int:
    out = naive_simd_program(
        _load(args.file), nproc=args.nproc, layout=args.layout, nest_index=args.nest
    )
    if args.simplify:
        out = simplify_program(out)
    print(format_source(out), end="")
    return 0


#: ``--engine`` spellings mapped onto Engine backends.
_ENGINE_BACKENDS = {"interp": "interpreter", "vm": "vm", "auto": "auto"}


def _run_guards(args):
    """Build the Budget / FallbackPolicy requested on the command line."""
    from .reliability import Budget, FallbackPolicy

    budget = None
    if args.max_steps is not None or args.deadline is not None:
        spec = {}
        if args.max_steps is not None:
            spec["max_steps"] = args.max_steps
        if args.deadline is not None:
            spec["deadline_seconds"] = args.deadline
        budget = Budget(**spec)
    policy = None
    if args.fallback:
        chain = tuple(b.strip() for b in args.fallback.split(",") if b.strip())
        policy = FallbackPolicy(chain=chain)
    return budget, policy


def _write_crash_dump(path: str, error) -> None:
    import json

    from .reliability import crash_dump_for

    with open(path, "w") as handle:
        json.dump(crash_dump_for(error), handle, indent=2, default=str)
    print(f"crash dump written to {path}", file=sys.stderr)


def _print_attempts(result) -> None:
    """Surface the fallback/retry story of a run on stdout."""
    attempts = getattr(result, "attempts", []) or []
    if not attempts:
        return
    print(f"attempts       : {len(attempts)}")
    for index, attempt in enumerate(attempts, 1):
        if attempt.ok:
            status = f"ok ({attempt.wall_seconds:.3f}s)"
        else:
            status = f"failed [{attempt.fault_kind or 'error'}]"
        print(f"  {index}. {attempt.backend:<12} {status}")
        if not attempt.ok and attempt.error:
            print(f"     {attempt.error}")


def _print_supervision(result) -> None:
    """One-line recovery summary for supervised (pmimd) runs."""
    events = getattr(result, "events", []) or []
    if not events:
        return
    recoveries = sum(
        1
        for e in events
        if e.get("event") in ("worker-dead", "worker-wedged", "shard-deadline")
    )
    retries = sum(1 for e in events if e.get("event") == "retry")
    speculations = sum(1 for e in events if e.get("event") == "speculate")
    print(
        f"supervision    : {len(events)} events, {recoveries} recoveries, "
        f"{retries} retries, {speculations} speculative replays"
    )


def cmd_run(args) -> int:
    from .lang.errors import InterpreterError
    from .runtime import BackendConfig, default_engine

    program = default_engine().compile(_load(args.file))
    bindings = dict(args.bind or [])
    budget, policy = _run_guards(args)
    backend = args.backend or (
        _ENGINE_BACKENDS[args.engine]
        if args.nproc and args.nproc > 0
        else "scalar"
    )
    backend = {"interp": "interpreter"}.get(backend, backend)
    config = None
    if args.workers is not None:
        config = BackendConfig(workers=args.workers)
    resume_from = None
    if args.resume:
        if not args.checkpoint_dir:
            print("error: --resume needs --checkpoint-dir DIR", file=sys.stderr)
            return 2
        if args.fallback:
            print(
                "error: --resume cannot be combined with --fallback "
                "(a resumed run continues the checkpoint's backend)",
                file=sys.stderr,
            )
            return 2
        from .reliability import CheckpointStore

        resume_from = CheckpointStore(args.checkpoint_dir).load_latest("run")
        if resume_from is None:
            print(
                f"no usable checkpoint under {args.checkpoint_dir}; "
                f"starting a clean run",
                file=sys.stderr,
            )
        else:
            print(
                f"resuming from checkpoint at step {resume_from.step} "
                f"({resume_from.backend} backend)",
                file=sys.stderr,
            )
            backend = "auto"
    ckpt_kwargs = dict(
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume_from=resume_from,
    )
    try:
        if backend == "scalar":
            result = program.run(
                bindings, backend="scalar", budget=budget, policy=policy,
                **ckpt_kwargs,
            )
            print("ran sequentially")
        else:
            result = program.run(
                bindings,
                nproc=args.nproc,
                backend=backend,
                budget=budget,
                policy=policy,
                config=config,
                **ckpt_kwargs,
            )
            if result.backend in ("mimd", "pmimd"):
                flavor = (
                    "worker processes"
                    if result.backend == "pmimd"
                    else "simulated processors"
                )
                print(
                    f"ran on {args.nproc} SPMD processors "
                    f"({result.backend}: {flavor})"
                )
            elif result.backend == "scalar":
                print("ran sequentially")
            else:
                suffix = " (bytecode VM)" if result.backend == "vm" else ""
                print(f"ran on {args.nproc} lockstep PEs{suffix}")
    except InterpreterError as exc:
        if args.crash_dump:
            _write_crash_dump(args.crash_dump, exc)
        for attempt in getattr(exc, "attempts", []) or []:
            status = (
                "ok"
                if attempt.ok
                else f"failed [{attempt.fault_kind or 'error'}]"
            )
            print(f"attempt[{attempt.backend}]: {status}", file=sys.stderr)
        raise
    _print_attempts(result)
    _print_supervision(result)
    env, counters = result
    if isinstance(counters, list):
        # Per-processor accumulators (mimd/pmimd): Eq. 1 aggregates.
        print(f"processors     : {len(counters)}")
        print(f"parallel steps : {result.time_steps()} (max over processors)")
        total_calls = {}
        for c in counters:
            for name, count in c.calls.items():
                total_calls[name] = total_calls.get(name, 0) + count
        if total_calls:
            print(f"external calls : {total_calls}")
        env = env[0] if env else {}
    else:
        summary = counters.summary()
        print(f"lockstep steps : {summary['total_steps']}")
        print(f"vector instrs  : {summary['vector_instructions']}")
        if summary["calls"]:
            print(f"external calls : {summary['calls']}")
        print(f"mean utilization: {summary['mean_utilization']:.1%}")
    if args.show:
        from .exec.values import FArray

        for name in args.show:
            value = env.get(name.lower())
            data = value.data if isinstance(value, FArray) else value
            print(f"{name} = {data}")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import run_fuzz
    from .fuzz.corpus import iter_corpus, replay_entry

    if args.replay:
        if not args.corpus:
            print("error: --replay needs --corpus DIR", file=sys.stderr)
            return 2
        failures = 0
        entries = 0
        for entry in iter_corpus(args.corpus):
            entries += 1
            divergence = replay_entry(entry, nproc=args.nproc)
            if divergence is None:
                print(f"{entry.name}: no longer reproduces")
            else:
                failures += 1
                print(
                    f"{entry.name}: still fails [{divergence.kind}] on "
                    f"{divergence.config}: {divergence.detail}"
                )
        print(f"replayed {entries} corpus entr{'y' if entries == 1 else 'ies'}")
        return 1 if failures else 0

    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        nproc=args.nproc,
        corpus_dir=args.corpus,
        shrink=args.shrink,
        max_failures=args.max_failures,
        start=args.start,
        pmimd=args.pmimd,
        pmimd_chaos=args.pmimd_chaos,
    )
    print(report.summary())
    for path in report.saved_paths:
        print(f"  saved {path}")
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    import json

    from .bench import (
        check_trajectory,
        empty_report,
        run_smoke_sweep,
        run_table1_sweep,
        validate_report,
    )

    if args.validate or args.check:
        path = args.validate or args.check
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        errors = validate_report(report)
        for error in errors:
            print(f"schema: {error}", file=sys.stderr)
        if errors:
            return 1
        print(f"{path}: schema ok ({len(report['points'])} point(s))")
        if args.check:
            problems = check_trajectory(report, threshold=args.threshold)
            for problem in problems:
                print(f"regression: {problem}", file=sys.stderr)
            if problems:
                return 1
            print(f"{path}: no regression beyond {args.threshold:.0%}")
        return 0

    def progress(cell):
        print(
            f"  cutoff {cell['cutoff']:4.1f} {cell['kernel']:4s}: "
            f"{cell['wall_seconds']:8.3f}s  steps={cell['steps']}",
            flush=True,
        )

    label = args.label or ("smoke" if args.smoke else "local")
    print(f"running {'reduced' if args.smoke else 'full Table-1'} sweep "
          f"(backend={args.backend})...", flush=True)
    if args.smoke:
        point = run_smoke_sweep(label, backend=args.backend, progress=progress)
    else:
        point = run_table1_sweep(label, backend=args.backend, progress=progress)
    print(f"total {point['total_seconds']:.3f}s over {len(point['cells'])} cells")

    if args.output:
        try:
            with open(args.output) as handle:
                report = json.load(handle)
        except FileNotFoundError:
            report = empty_report()
        except ValueError as exc:
            print(f"error: cannot parse {args.output}: {exc}", file=sys.stderr)
            return 2
        report.setdefault("points", []).append(point)
        errors = validate_report(report)
        if errors:
            for error in errors:
                print(f"schema: {error}", file=sys.stderr)
            return 1
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"appended point {label!r} to {args.output}")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .serve import ServeConfig, TenantPolicy, serve

    tenants = []
    if args.max_steps is not None or args.deadline is not None or args.fallback:
        chain = tuple(
            b.strip() for b in (args.fallback or "").split(",") if b.strip()
        )
        tenants.append(
            TenantPolicy(
                name="default",
                max_steps=args.max_steps,
                deadline_seconds=args.deadline,
                fallback=chain,
            )
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        store_dir=args.store_dir,
        store_max_entries=args.store_max_entries,
        store_max_bytes=args.store_max_bytes,
        cache_size=args.cache_size,
        max_inflight=args.max_inflight,
        pool_workers=args.pool_workers,
        tenants=tuple(tenants),
    )

    def ready(app):
        store = args.store_dir or "<memory only>"
        print(
            f"repro serve listening on http://{args.host}:{app.port} "
            f"(store: {store})",
            flush=True,
        )

    try:
        asyncio.run(serve(config, ready=ready))
    except KeyboardInterrupt:
        pass
    print("repro serve: shutdown complete", flush=True)
    return 0


def cmd_paper(args) -> int:
    from . import eval as evaluation

    exhibit = args.exhibit
    if exhibit == "traces":
        traces = evaluation.example_traces()
        print("Figure 4 (MIMD):")
        print(traces.mimd.format())
        print("\nFigure 6 (naive SIMD):")
        print(traces.naive_simd.format())
        print("\nFlattened SIMD:")
        print(traces.flattened_simd.format())
    elif exhibit == "fig18":
        print(evaluation.format_figure18(evaluation.figure18()))
    elif exhibit == "table1":
        print(evaluation.format_table1(evaluation.table1()))
    elif exhibit == "table2":
        print(evaluation.format_table2(evaluation.table2()))
    elif exhibit == "fig19":
        print(evaluation.format_figure19(evaluation.figure19_series()))
    elif exhibit == "sparc":
        for row in evaluation.sparc_reference():
            print(f"Sparc 2 at {row['cutoff']:.0f}A: {row['seconds']:.2f}s")
    else:
        print(f"unknown exhibit '{exhibit}'", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Loop flattening for SIMD control flow (PLDI '92 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse and semantically check a MiniF file")
    p.add_argument("file")
    p.add_argument("--external", action="append", help="known external subroutine")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "lint",
        help="static analysis: divergence races, provable bounds "
             "violations, SIMD blowup warnings, bytecode verification",
    )
    p.add_argument("files", nargs="+", metavar="FILE",
                   help="MiniF source file, or a .py module whose "
                        "string constants embed MiniF programs")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--fail-on", default="error", choices=["error", "warning"],
                   help="exit nonzero when findings at/above this "
                        "severity exist (default: error)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip bytecode verification of compiled programs")
    p.add_argument("--explain-deps", action="store_true",
                   help="also print each loop nest's dependence graph "
                        "(direction/distance vectors, parallel / fission "
                        "/ interchange verdicts)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("report", help="Section 6 applicability report per nest")
    p.add_argument("file")
    p.add_argument("--assume-parallel", action="store_true")
    p.add_argument("--assume-min-trips", action="store_true")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("flatten", help="flatten a loop nest and print the program")
    p.add_argument("file")
    p.add_argument("--variant", default="auto",
                   choices=["auto", "general", "optimized", "done"])
    p.add_argument("--assume-min-trips", action="store_true")
    p.add_argument("--no-simd", action="store_true",
                   help="emit the F77 form instead of the F90simd form")
    p.add_argument("--nest", type=int, default=0, help="which nest (default first)")
    p.add_argument("-p", "--nproc", type=int, default=0,
                   help="also partition the outer loop over P PEs")
    p.add_argument("--layout", default="cyclic", choices=["block", "cyclic"])
    p.add_argument("--simplify", action="store_true",
                   help="constant-fold and clean up the generated code")
    p.set_defaults(fn=cmd_flatten)

    p = sub.add_parser("simdize", help="naive SIMDization (the Section 3 baseline)")
    p.add_argument("file")
    p.add_argument("-p", "--nproc", type=int, required=True)
    p.add_argument("--layout", default="block", choices=["block", "cyclic"])
    p.add_argument("--nest", type=int, default=0)
    p.add_argument("--simplify", action="store_true",
                   help="constant-fold and clean up the generated code")
    p.set_defaults(fn=cmd_simdize)

    p = sub.add_parser("run", help="execute a MiniF program")
    p.add_argument("file")
    p.add_argument("-p", "--nproc", type=int, default=0,
                   help="run on a lockstep SIMD machine with P PEs "
                        "(omit for sequential execution)")
    p.add_argument("--bind", action="append", type=_parse_binding,
                   metavar="NAME=V[,V...]", help="initial variable binding")
    p.add_argument("--show", action="append", metavar="NAME",
                   help="print a variable after the run")
    p.add_argument("--engine", default="interp",
                   choices=["interp", "vm", "auto"],
                   help="SIMD execution engine: tree-walking interpreter, "
                        "the bytecode VM, or autoselection")
    p.add_argument("--backend", default=None,
                   choices=["auto", "vm", "interp", "interpreter",
                            "scalar", "mimd", "pmimd"],
                   help="execution backend (overrides --engine): lockstep "
                        "SIMD engines, sequential scalar, the in-process "
                        "MIMD simulator, or the process-parallel pmimd "
                        "pool with worker supervision")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker process count for --backend pmimd "
                        "(default: min(nproc, cpu count))")
    p.add_argument("--max-steps", type=int, default=None,
                   help="abort with a budget fault after this many "
                        "executed instructions/statements")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget for the run")
    p.add_argument("--crash-dump", metavar="PATH",
                   help="on failure, write the postmortem (pc, mask stack, "
                        "per-PE environment, last opcodes) as JSON")
    p.add_argument("--fallback", metavar="CHAIN",
                   help="comma-separated backend fallback chain, e.g. "
                        "'vm,interpreter'; retryable faults degrade along it")
    p.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                   help="durable execution: capture a restorable checkpoint "
                        "every N executed steps (vm/scalar save under "
                        "--checkpoint-dir; pmimd workers checkpoint per "
                        "processor so shard replays resume, not rerun)")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="crash-safe on-disk checkpoint store root "
                        "(atomic writes, digest-verified loads)")
    p.add_argument("--resume", action="store_true",
                   help="continue from the latest good checkpoint in "
                        "--checkpoint-dir; the final state is bit-identical "
                        "to an uninterrupted run (clean start if none)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the transform pipeline "
             "(every legal variant x backend must agree)",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument("-n", "--iterations", type=int, default=500,
                   help="number of generated programs (default 500)")
    p.add_argument("-p", "--nproc", type=int, default=4,
                   help="lockstep PE count for the SIMD/SPMD/MIMD legs")
    p.add_argument("--corpus", metavar="DIR",
                   help="persist failures (program, bindings, divergence, "
                        "crash dump) as replayable JSON under DIR")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug each failure to a minimal reproducer")
    p.add_argument("--max-failures", type=int, default=10,
                   help="stop the campaign after this many failing programs")
    p.add_argument("--start", type=int, default=0,
                   help="first program index (for sharding campaigns)")
    p.add_argument("--pmimd", action="store_true",
                   help="also run the process-parallel pmimd leg on "
                        "every program (forks worker processes)")
    p.add_argument("--pmimd-chaos", action="store_true",
                   help="run the pmimd leg under seeded worker "
                        "kill/hang/slow injection with a pmimd->mimd "
                        "fallback chain")
    p.add_argument("--replay", action="store_true",
                   help="re-run the stored corpus instead of generating "
                        "new programs")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "bench",
        help="NBFORCE Table-1 performance sweep, trajectory schema "
             "validation, and the regression gate",
    )
    p.add_argument("--smoke", action="store_true",
                   help="reduced sweep (small SOD, narrow machine) for CI")
    p.add_argument("--backend", default="vm",
                   choices=["vm", "interpreter", "pmimd"],
                   help="engine to measure (default: vm); 'pmimd' sweeps "
                        "the MIMD column (sequential kernel per "
                        "asynchronous processor) instead of the "
                        "lockstep kernels")
    p.add_argument("--label", default=None,
                   help="label recorded on the measured point")
    p.add_argument("--output", metavar="FILE",
                   help="append the measured point to this trajectory "
                        "file (created if missing)")
    p.add_argument("--validate", metavar="FILE",
                   help="schema-validate a trajectory file and exit")
    p.add_argument("--check", metavar="FILE",
                   help="validate FILE, then fail if its newest point "
                        "regresses beyond --threshold vs the best "
                        "earlier comparable point")
    p.add_argument("--threshold", type=float, default=0.20,
                   help="relative regression tolerance (default: 0.20)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="async compile-and-run HTTP service with a persistent "
             "sharded artifact cache (POST /v1/compile, /v1/run, "
             "/v1/lint; GET /healthz, /metrics)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8642,
                   help="bind port (0 picks a free port, printed on boot)")
    p.add_argument("--store-dir", metavar="DIR",
                   help="persistent artifact-store root shared across "
                        "processes; omit for in-memory caching only")
    p.add_argument("--store-max-entries", type=int, default=None,
                   help="LRU eviction ceiling on stored artifacts")
    p.add_argument("--store-max-bytes", type=int, default=None,
                   help="LRU eviction ceiling on stored bytes")
    p.add_argument("--cache-size", type=int, default=128,
                   help="in-memory compile-cache entries (default 128)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="global concurrent-request ceiling; beyond it "
                        "requests are rejected with 429 (default 64)")
    p.add_argument("--pool-workers", type=int, default=4,
                   help="execution thread-pool size (default 4)")
    p.add_argument("--max-steps", type=int, default=None,
                   help="per-run step budget applied to every tenant")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="per-run wall-clock budget applied to every tenant")
    p.add_argument("--fallback", metavar="CHAIN",
                   help="backend fallback chain for served runs, e.g. "
                        "'vm,interpreter'")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("paper", help="regenerate a paper exhibit")
    p.add_argument("exhibit",
                   choices=["traces", "fig18", "table1", "table2", "fig19", "sparc"])
    p.set_defaults(fn=cmd_paper)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except MiniFError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
