"""Pretty-printer: AST back to MiniF source.

``parse(print(parse(src)))`` equals ``parse(src)`` — the printer emits
exactly the surface syntax the parser accepts, with minimal
parenthesization derived from the expression grammar's precedence.
"""

from __future__ import annotations

from . import ast

_INDENT = "  "

#: Binding strength of binary operators, mirroring the parser.
_PRECEDENCE = {
    ".OR.": 1,
    ".AND.": 2,
    "==": 4,
    "/=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "**": 8,
}

_NOT_PRECEDENCE = 3
_UNARY_MINUS_PRECEDENCE = 7
_PRIMARY = 9

#: Non-associative comparison operators.
COMPARISON_OPS = frozenset({"==", "/=", "<", "<=", ">", ">="})


def format_expr(expr: ast.Expr) -> str:
    """Render an expression as MiniF source."""
    return _expr(expr, 0)


def _expr(expr: ast.Expr, parent_prec: int) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.RealLit):
        return expr.text if expr.text else repr(expr.value)
    if isinstance(expr, ast.BoolLit):
        return ".TRUE." if expr.value else ".FALSE."
    if isinstance(expr, ast.StringLit):
        return f"'{expr.value}'"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Slice):
        lo = _expr(expr.lo, 0) if expr.lo is not None else ""
        hi = _expr(expr.hi, 0) if expr.hi is not None else ""
        return f"{lo}:{hi}"
    if isinstance(expr, ast.ArrayRef):
        subs = ", ".join(_expr(s, 0) for s in expr.subs)
        return f"{expr.name}({subs})"
    if isinstance(expr, ast.Call):
        args = ", ".join(_expr(a, 0) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.VectorLit):
        items = ", ".join(_expr(item, 0) for item in expr.items)
        return f"[{items}]"
    if isinstance(expr, ast.RangeVec):
        return f"[{_expr(expr.lo, 0)} : {_expr(expr.hi, 0)}]"
    if isinstance(expr, ast.UnOp):
        if expr.op == ".NOT.":
            prec = _NOT_PRECEDENCE
            text = f".NOT. {_expr(expr.operand, prec)}"
        else:
            prec = _UNARY_MINUS_PRECEDENCE
            text = f"-{_expr(expr.operand, prec)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        # +,-,*,/ and the logicals are left-associative; ** is
        # right-associative; comparisons are non-associative (they do
        # not chain), so BOTH their operands must bind tighter.
        if expr.op == "**":
            left_prec, right_prec = prec + 1, prec
        elif expr.op in COMPARISON_OPS:
            left_prec, right_prec = prec + 1, prec + 1
        else:
            left_prec, right_prec = prec, prec + 1
        text = f"{_expr(expr.left, left_prec)} {expr.op} {_expr(expr.right, right_prec)}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


class Printer:
    """Accumulates formatted source lines with indentation and labels."""

    def __init__(self):
        self._lines: list[str] = []

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def _emit(self, depth: int, text: str, label: int | None = None) -> None:
        prefix = f"{label} " if label is not None else ""
        self._lines.append(prefix + _INDENT * depth + text)

    # -- program units --------------------------------------------------------

    def print_source(self, source: ast.SourceFile) -> None:
        for index, unit in enumerate(source.units):
            if index:
                self._lines.append("")
            self.print_routine(unit)

    def print_routine(self, routine: ast.Routine) -> None:
        if routine.kind == "program":
            self._emit(0, f"PROGRAM {routine.name}")
        else:
            params = ", ".join(routine.params)
            self._emit(0, f"SUBROUTINE {routine.name}({params})")
        self.print_body(routine.body, 1)
        self._emit(0, "END")

    # -- statements ------------------------------------------------------------

    def print_body(self, body: list[ast.Stmt], depth: int) -> None:
        for stmt in body:
            self.print_stmt(stmt, depth)

    def print_stmt(self, stmt: ast.Stmt, depth: int) -> None:
        label = stmt.label
        if isinstance(stmt, ast.Decl):
            self._print_decl(stmt, depth, label)
        elif isinstance(stmt, ast.ParamDecl):
            pairs = ", ".join(
                f"{n} = {format_expr(v)}" for n, v in zip(stmt.names, stmt.values)
            )
            self._emit(depth, f"PARAMETER ({pairs})", label)
        elif isinstance(stmt, ast.Decomposition):
            entities = ", ".join(self._entity(e) for e in stmt.entities)
            self._emit(depth, f"DECOMPOSITION {entities}", label)
        elif isinstance(stmt, ast.Align):
            self._emit(depth, f"ALIGN {', '.join(stmt.sources)} WITH {stmt.target}", label)
        elif isinstance(stmt, ast.Distribute):
            specs = ", ".join(s.upper() if s != "*" else "*" for s in stmt.specs)
            self._emit(depth, f"DISTRIBUTE {stmt.name}({specs})", label)
        elif isinstance(stmt, ast.Assign):
            self._emit(depth, f"{format_expr(stmt.target)} = {format_expr(stmt.value)}", label)
        elif isinstance(stmt, ast.Do):
            header = f"DO {stmt.var} = {format_expr(stmt.lo)}, {format_expr(stmt.hi)}"
            if stmt.stride is not None:
                header += f", {format_expr(stmt.stride)}"
            self._emit(depth, header, label)
            self.print_body(stmt.body, depth + 1)
            self._emit(depth, "ENDDO")
        elif isinstance(stmt, ast.DoWhile):
            self._emit(depth, f"DO WHILE ({format_expr(stmt.cond)})", label)
            self.print_body(stmt.body, depth + 1)
            self._emit(depth, "ENDDO")
        elif isinstance(stmt, ast.While):
            self._emit(depth, f"WHILE ({format_expr(stmt.cond)})", label)
            self.print_body(stmt.body, depth + 1)
            self._emit(depth, "ENDWHILE")
        elif isinstance(stmt, ast.If):
            self._print_if(stmt, depth, label)
        elif isinstance(stmt, ast.Where):
            self._emit(depth, f"WHERE ({format_expr(stmt.mask)})", label)
            self.print_body(stmt.then_body, depth + 1)
            if stmt.else_body:
                self._emit(depth, "ELSEWHERE")
                self.print_body(stmt.else_body, depth + 1)
            self._emit(depth, "ENDWHERE")
        elif isinstance(stmt, ast.Forall):
            header = f"FORALL ({stmt.var} = {format_expr(stmt.lo)} : {format_expr(stmt.hi)}"
            if stmt.mask is not None:
                header += f", {format_expr(stmt.mask)}"
            header += ")"
            self._emit(depth, header, label)
            self.print_body(stmt.body, depth + 1)
            self._emit(depth, "ENDFORALL")
        elif isinstance(stmt, ast.Goto):
            self._emit(depth, f"GOTO {stmt.target}", label)
        elif isinstance(stmt, ast.Continue):
            self._emit(depth, "CONTINUE", label)
        elif isinstance(stmt, ast.ExitStmt):
            self._emit(depth, "EXIT", label)
        elif isinstance(stmt, ast.CycleStmt):
            self._emit(depth, "CYCLE", label)
        elif isinstance(stmt, ast.CallStmt):
            args = ", ".join(format_expr(a) for a in stmt.args)
            self._emit(depth, f"CALL {stmt.name}({args})" if stmt.args else f"CALL {stmt.name}", label)
        elif isinstance(stmt, ast.Return):
            self._emit(depth, "RETURN", label)
        elif isinstance(stmt, ast.Stop):
            self._emit(depth, "STOP", label)
        else:
            raise TypeError(f"cannot print statement node {type(stmt).__name__}")

    def _print_decl(self, stmt: ast.Decl, depth: int, label: int | None) -> None:
        entities = ", ".join(self._entity(e) for e in stmt.entities)
        keyword = stmt.base_type.upper()
        if stmt.replicated:
            keyword += ", REPLICATED ::"
        self._emit(depth, f"{keyword} {entities}", label)

    @staticmethod
    def _entity(entity: ast.DeclEntity) -> str:
        if entity.dims:
            dims = ", ".join(format_expr(d) for d in entity.dims)
            return f"{entity.name}({dims})"
        return entity.name

    def _print_if(self, stmt: ast.If, depth: int, label: int | None) -> None:
        self._emit(depth, f"IF ({format_expr(stmt.cond)}) THEN", label)
        self.print_body(stmt.then_body, depth + 1)
        else_body = stmt.else_body
        while len(else_body) == 1 and isinstance(else_body[0], ast.If) and else_body[0].label is None:
            nested = else_body[0]
            self._emit(depth, f"ELSEIF ({format_expr(nested.cond)}) THEN")
            self.print_body(nested.then_body, depth + 1)
            else_body = nested.else_body
        if else_body:
            self._emit(depth, "ELSE")
            self.print_body(else_body, depth + 1)
        self._emit(depth, "ENDIF")


def format_source(source: ast.SourceFile) -> str:
    """Render a whole source file."""
    printer = Printer()
    printer.print_source(source)
    return printer.text()


def format_routine(routine: ast.Routine) -> str:
    """Render one routine."""
    printer = Printer()
    printer.print_routine(routine)
    return printer.text()


def format_statements(body: list[ast.Stmt], depth: int = 0) -> str:
    """Render a bare statement list (used by tests and documentation)."""
    printer = Printer()
    printer.print_body(body, depth)
    return printer.text()
