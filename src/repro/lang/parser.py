"""Recursive-descent parser for MiniF.

The grammar is statement-keyword driven: every logical line starts a
statement, and block constructs (``DO``/``ENDDO``, ``IF``/``ENDIF``,
``WHERE``/``ENDWHERE``, ...) nest recursively.  Besides the structured
forms, the classic F77 shapes the paper cares about are supported:

* numeric statement labels and ``GOTO``;
* label-terminated loops ``DO 10 i = 1, n ... 10 CONTINUE``;
* logical IF (``IF (cond) stmt``) and ``IF (cond) GOTO label``;
* single-statement ``WHERE (mask) stmt`` and ``FORALL (...) stmt``.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .tokens import Token, TokenKind

#: Names the parser resolves to intrinsic :class:`~repro.lang.ast.Call`
#: expressions rather than array references.
INTRINSICS = frozenset(
    {
        "any",
        "all",
        "max",
        "min",
        "maxval",
        "minval",
        "sum",
        "count",
        "mod",
        "abs",
        "sqrt",
        "exp",
        "log",
        "nint",
        "float",
        "merge",
        "size",
        "iand",
        "ior",
        "ceiling",
        "floor",
    }
)

#: Keywords that terminate the statement list of an enclosing block.
_BLOCK_ENDERS = (
    "END",
    "ENDDO",
    "ENDWHILE",
    "ENDIF",
    "ENDWHERE",
    "ENDFORALL",
    "ELSE",
    "ELSEIF",
    "ELSEWHERE",
)


class Parser:
    """Parser over a token stream produced by :mod:`repro.lang.lexer`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token-stream helpers -------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check_kw(self, *names: str) -> bool:
        return self._cur.is_kw(*names)

    def _accept_kw(self, *names: str) -> Token | None:
        if self._check_kw(*names):
            return self._advance()
        return None

    def _expect_kw(self, name: str) -> Token:
        if not self._check_kw(name):
            raise ParseError(f"expected {name}, found {self._cur}", self._cur.location)
        return self._advance()

    def _accept_op(self, *ops: str) -> Token | None:
        if self._cur.is_op(*ops):
            return self._advance()
        return None

    def _expect_op(self, op: str) -> Token:
        if not self._cur.is_op(op):
            raise ParseError(f"expected {op!r}, found {self._cur}", self._cur.location)
        return self._advance()

    def _expect_name(self) -> str:
        if self._cur.kind is not TokenKind.NAME:
            raise ParseError(f"expected identifier, found {self._cur}", self._cur.location)
        return self._advance().text

    def _expect_int(self) -> int:
        if self._cur.kind is not TokenKind.INT:
            raise ParseError(f"expected integer, found {self._cur}", self._cur.location)
        return int(self._advance().text)

    def _expect_newline(self) -> None:
        if self._cur.kind is TokenKind.EOF:
            return
        if self._cur.kind is not TokenKind.NEWLINE:
            raise ParseError(
                f"expected end of statement, found {self._cur}", self._cur.location
            )
        self._advance()

    def _skip_newlines(self) -> None:
        while self._cur.kind is TokenKind.NEWLINE:
            self._advance()

    # -- program units --------------------------------------------------------

    def parse_source(self) -> ast.SourceFile:
        """Parse a whole source file (one or more program units)."""
        units: list[ast.Routine] = []
        self._skip_newlines()
        while self._cur.kind is not TokenKind.EOF:
            units.append(self._parse_unit())
            self._skip_newlines()
        if not units:
            raise ParseError("empty source", self._cur.location)
        return ast.SourceFile(units)

    def _parse_unit(self) -> ast.Routine:
        loc = self._cur.location
        if self._accept_kw("PROGRAM"):
            kind = "program"
            name = self._expect_name()
            params: list[str] = []
        elif self._accept_kw("SUBROUTINE"):
            kind = "subroutine"
            name = self._expect_name()
            params = []
            if self._accept_op("("):
                if not self._cur.is_op(")"):
                    params.append(self._expect_name())
                    while self._accept_op(","):
                        params.append(self._expect_name())
                self._expect_op(")")
        else:
            raise ParseError(
                f"expected PROGRAM or SUBROUTINE, found {self._cur}", self._cur.location
            )
        self._expect_newline()
        body = self._parse_body()
        self._expect_kw("END")
        self._accept_kw("PROGRAM", "SUBROUTINE")
        if self._cur.kind is TokenKind.NAME:
            self._advance()
        self._expect_newline()
        return ast.Routine(kind, name, params, body, loc=loc)

    # -- statement blocks ------------------------------------------------------

    def _parse_body(self, end_label: int | None = None) -> list[ast.Stmt]:
        """Parse statements until a block-ending keyword (not consumed).

        ``end_label`` supports label-terminated DO loops: parsing stops
        *after* consuming the statement carrying that label.
        """
        body: list[ast.Stmt] = []
        while True:
            self._skip_newlines()
            if self._cur.kind is TokenKind.EOF:
                if end_label is not None:
                    raise ParseError(
                        f"missing statement with label {end_label}", self._cur.location
                    )
                return body
            label = None
            if self._cur.kind is TokenKind.INT and self._cur.first_on_line:
                label = int(self._advance().text)
            if label is None and self._check_kw(*_BLOCK_ENDERS):
                return body
            stmt = self._parse_statement()
            stmt.label = label
            body.append(stmt)
            if end_label is not None and label == end_label:
                return body

    def _parse_statement(self) -> ast.Stmt:
        token = self._cur
        if token.kind is TokenKind.KEYWORD:
            handler = {
                "INTEGER": self._parse_decl,
                "REAL": self._parse_decl,
                "LOGICAL": self._parse_decl,
                "PARAMETER": self._parse_parameter,
                "DIMENSION": self._parse_dimension,
                "DECOMPOSITION": self._parse_decomposition,
                "ALIGN": self._parse_align,
                "DISTRIBUTE": self._parse_distribute,
                "DO": self._parse_do,
                "WHILE": self._parse_while,
                "IF": self._parse_if,
                "WHERE": self._parse_where,
                "FORALL": self._parse_forall,
                "GOTO": self._parse_goto,
                "CONTINUE": self._parse_simple(ast.Continue),
                "EXIT": self._parse_simple(ast.ExitStmt),
                "CYCLE": self._parse_simple(ast.CycleStmt),
                "RETURN": self._parse_simple(ast.Return),
                "STOP": self._parse_simple(ast.Stop),
                "CALL": self._parse_call,
            }.get(token.text)
            if handler is None:
                raise ParseError(f"unexpected keyword {token.text}", token.location)
            return handler()
        return self._parse_assignment()

    def _parse_simple(self, node_class):
        def build():
            loc = self._advance().location
            self._expect_newline()
            return node_class(loc=loc)

        return build

    # -- declarations ----------------------------------------------------------

    def _parse_decl(self) -> ast.Decl:
        loc = self._cur.location
        base_type = self._advance().text.lower()
        replicated = False
        if self._accept_op(","):
            self._expect_kw("REPLICATED")
            replicated = True
            self._expect_op(":")
            self._expect_op(":")
        entities = [self._parse_decl_entity()]
        while self._accept_op(","):
            entities.append(self._parse_decl_entity())
        self._expect_newline()
        return ast.Decl(base_type, entities, replicated, loc=loc)

    def _parse_decl_entity(self) -> ast.DeclEntity:
        loc = self._cur.location
        name = self._expect_name()
        dims: list[ast.Expr] = []
        if self._accept_op("("):
            dims.append(self._parse_expr())
            while self._accept_op(","):
                dims.append(self._parse_expr())
            self._expect_op(")")
        return ast.DeclEntity(name, dims, loc=loc)

    def _parse_parameter(self) -> ast.ParamDecl:
        loc = self._advance().location
        self._expect_op("(")
        names: list[str] = []
        values: list[ast.Expr] = []
        while True:
            names.append(self._expect_name())
            self._expect_op("=")
            values.append(self._parse_expr())
            if not self._accept_op(","):
                break
        self._expect_op(")")
        self._expect_newline()
        return ast.ParamDecl(names, values, loc=loc)

    def _parse_dimension(self) -> ast.Decl:
        loc = self._advance().location
        entities = [self._parse_decl_entity()]
        while self._accept_op(","):
            entities.append(self._parse_decl_entity())
        self._expect_newline()
        return ast.Decl("dimension", entities, loc=loc)

    def _parse_decomposition(self) -> ast.Decomposition:
        loc = self._advance().location
        entities = [self._parse_decl_entity()]
        while self._accept_op(","):
            entities.append(self._parse_decl_entity())
        self._expect_newline()
        return ast.Decomposition(entities, loc=loc)

    def _parse_align(self) -> ast.Align:
        loc = self._advance().location
        sources = [self._expect_name()]
        while self._accept_op(","):
            sources.append(self._expect_name())
        self._expect_kw("WITH")
        target = self._expect_name()
        self._expect_newline()
        return ast.Align(sources, target, loc=loc)

    def _parse_distribute(self) -> ast.Distribute:
        loc = self._advance().location
        name = self._expect_name()
        self._expect_op("(")
        specs = [self._parse_dist_spec()]
        while self._accept_op(","):
            specs.append(self._parse_dist_spec())
        self._expect_op(")")
        self._expect_newline()
        return ast.Distribute(name, specs, loc=loc)

    def _parse_dist_spec(self) -> str:
        if self._accept_op("*"):
            return "*"
        token = self._cur
        if token.is_kw("BLOCK") or (token.kind is TokenKind.NAME and token.text == "cyclic"):
            return self._advance().text.lower()
        if token.kind is TokenKind.NAME and token.text in ("block", "cyclic"):
            return self._advance().text
        raise ParseError(f"expected BLOCK, CYCLIC or *, found {token}", token.location)

    # -- control flow ----------------------------------------------------------

    def _parse_do(self) -> ast.Stmt:
        loc = self._advance().location
        if self._accept_kw("WHILE"):
            self._expect_op("(")
            cond = self._parse_expr()
            self._expect_op(")")
            self._expect_newline()
            body = self._parse_body()
            self._expect_enddo()
            return ast.DoWhile(cond, body, loc=loc)
        end_label = None
        if self._cur.kind is TokenKind.INT:
            end_label = self._expect_int()
        var = self._expect_name()
        self._expect_op("=")
        lo = self._parse_expr()
        self._expect_op(",")
        hi = self._parse_expr()
        stride = None
        if self._accept_op(","):
            stride = self._parse_expr()
        self._expect_newline()
        if end_label is not None:
            body = self._parse_body(end_label=end_label)
        else:
            body = self._parse_body()
            self._expect_enddo()
        return ast.Do(var, lo, hi, stride, body, loc=loc)

    def _expect_enddo(self) -> None:
        if self._accept_kw("ENDDO"):
            self._expect_newline()
            return
        self._expect_kw("END")
        self._expect_kw("DO")
        self._expect_newline()

    def _parse_while(self) -> ast.While:
        loc = self._advance().location
        cond = self._parse_expr()
        self._expect_newline()
        body = self._parse_body()
        if self._accept_kw("ENDWHILE"):
            self._expect_newline()
        else:
            self._expect_kw("END")
            self._expect_kw("WHILE")
            self._expect_newline()
        return ast.While(cond, body, loc=loc)

    def _parse_if(self) -> ast.Stmt:
        loc = self._advance().location
        self._expect_op("(")
        cond = self._parse_expr()
        self._expect_op(")")
        if self._accept_kw("THEN"):
            self._expect_newline()
            then_body = self._parse_body()
            else_body = self._parse_else_chain()
            return ast.If(cond, then_body, else_body, loc=loc)
        if self._check_kw("GOTO"):
            self._advance()
            target = self._expect_int()
            self._expect_newline()
            return ast.If(cond, [ast.Goto(target, loc=loc)], [], loc=loc)
        stmt = self._parse_statement()
        return ast.If(cond, [stmt], [], loc=loc)

    def _parse_else_chain(self) -> list[ast.Stmt]:
        if self._accept_kw("ELSEIF"):
            loc = self._cur.location
            self._expect_op("(")
            cond = self._parse_expr()
            self._expect_op(")")
            self._expect_kw("THEN")
            self._expect_newline()
            then_body = self._parse_body()
            else_body = self._parse_else_chain()
            return [ast.If(cond, then_body, else_body, loc=loc)]
        if self._accept_kw("ELSE"):
            if self._accept_kw("IF"):
                loc = self._cur.location
                self._expect_op("(")
                cond = self._parse_expr()
                self._expect_op(")")
                self._expect_kw("THEN")
                self._expect_newline()
                then_body = self._parse_body()
                else_body = self._parse_else_chain()
                return [ast.If(cond, then_body, else_body, loc=loc)]
            self._expect_newline()
            else_body = self._parse_body()
            self._expect_endif()
            return else_body
        self._expect_endif()
        return []

    def _expect_endif(self) -> None:
        if self._accept_kw("ENDIF"):
            self._expect_newline()
            return
        self._expect_kw("END")
        self._expect_kw("IF")
        self._expect_newline()

    def _parse_where(self) -> ast.Where:
        loc = self._advance().location
        self._expect_op("(")
        mask = self._parse_expr()
        self._expect_op(")")
        if self._cur.kind is TokenKind.NEWLINE:
            self._advance()
            then_body = self._parse_body()
            else_body: list[ast.Stmt] = []
            if self._accept_kw("ELSEWHERE"):
                self._expect_newline()
                else_body = self._parse_body()
            if self._accept_kw("ENDWHERE"):
                self._expect_newline()
            else:
                self._expect_kw("END")
                self._expect_kw("WHERE")
                self._expect_newline()
            return ast.Where(mask, then_body, else_body, loc=loc)
        stmt = self._parse_statement()
        return ast.Where(mask, [stmt], [], loc=loc)

    def _parse_forall(self) -> ast.Forall:
        loc = self._advance().location
        self._expect_op("(")
        var = self._expect_name()
        self._expect_op("=")
        lo = self._parse_expr()
        self._expect_op(":")
        hi = self._parse_expr()
        mask = None
        if self._accept_op(","):
            mask = self._parse_expr()
        self._expect_op(")")
        if self._cur.kind is TokenKind.NEWLINE:
            self._advance()
            body = self._parse_body()
            if self._accept_kw("ENDFORALL"):
                self._expect_newline()
            else:
                self._expect_kw("END")
                self._expect_kw("FORALL")
                self._expect_newline()
            return ast.Forall(var, lo, hi, mask, body, loc=loc)
        stmt = self._parse_statement()
        return ast.Forall(var, lo, hi, mask, [stmt], loc=loc)

    def _parse_goto(self) -> ast.Goto:
        loc = self._advance().location
        target = self._expect_int()
        self._expect_newline()
        return ast.Goto(target, loc=loc)

    def _parse_call(self) -> ast.CallStmt:
        loc = self._advance().location
        name = self._expect_name()
        args: list[ast.Expr] = []
        if self._accept_op("("):
            if not self._cur.is_op(")"):
                args.append(self._parse_arg())
                while self._accept_op(","):
                    args.append(self._parse_arg())
            self._expect_op(")")
        self._expect_newline()
        return ast.CallStmt(name, args, loc=loc)

    def _parse_assignment(self) -> ast.Assign:
        loc = self._cur.location
        target = self._parse_primary()
        if not isinstance(target, (ast.Var, ast.ArrayRef)):
            raise ParseError("assignment target must be a variable or array element", loc)
        self._expect_op("=")
        value = self._parse_expr()
        self._expect_newline()
        return ast.Assign(target, value, loc=loc)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._cur.is_op(".OR."):
            loc = self._advance().location
            right = self._parse_and()
            left = ast.BinOp(".OR.", left, right, loc=loc)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._cur.is_op(".AND."):
            loc = self._advance().location
            right = self._parse_not()
            left = ast.BinOp(".AND.", left, right, loc=loc)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._cur.is_op(".NOT."):
            loc = self._advance().location
            return ast.UnOp(".NOT.", self._parse_not(), loc=loc)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        if self._cur.is_op("==", "/=", "<", "<=", ">", ">="):
            op = self._advance()
            right = self._parse_additive()
            return ast.BinOp(op.text, left, right, loc=op.location)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._cur.is_op("+", "-"):
            op = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinOp(op.text, left, right, loc=op.location)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._cur.is_op("*", "/"):
            op = self._advance()
            right = self._parse_unary()
            left = ast.BinOp(op.text, left, right, loc=op.location)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._cur.is_op("-", "+"):
            op = self._advance()
            operand = self._parse_unary()
            if op.text == "+":
                return operand
            return ast.UnOp("-", operand, loc=op.location)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._cur.is_op("**"):
            op = self._advance()
            exponent = self._parse_unary()
            return ast.BinOp("**", base, exponent, loc=op.location)
        return base

    def _parse_primary(self) -> ast.Expr:
        token = self._cur
        loc = token.location
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(int(token.text), loc=loc)
        if token.kind is TokenKind.REAL:
            self._advance()
            return ast.RealLit(float(token.text), token.text, loc=loc)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(token.text, loc=loc)
        if token.is_kw("TRUE"):
            self._advance()
            return ast.BoolLit(True, loc=loc)
        if token.is_kw("FALSE"):
            self._advance()
            return ast.BoolLit(False, loc=loc)
        if token.is_op("("):
            self._advance()
            inner = self._parse_expr()
            self._expect_op(")")
            return inner
        if token.is_op("["):
            return self._parse_vector()
        if token.kind is TokenKind.NAME:
            name = self._advance().text
            if self._cur.is_op("("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._cur.is_op(")"):
                    args.append(self._parse_arg())
                    while self._accept_op(","):
                        args.append(self._parse_arg())
                self._expect_op(")")
                if name in INTRINSICS:
                    return ast.Call(name, args, loc=loc)
                return ast.ArrayRef(name, args, loc=loc)
            return ast.Var(name, loc=loc)
        raise ParseError(f"unexpected token {token} in expression", loc)

    def _parse_arg(self) -> ast.Expr:
        """Parse a subscript or argument, allowing ``lo:hi`` sections."""
        loc = self._cur.location
        if self._cur.is_op(":"):
            self._advance()
            if self._cur.is_op(",", ")"):
                return ast.Slice(None, None, loc=loc)
            hi = self._parse_expr()
            return ast.Slice(None, hi, loc=loc)
        lo = self._parse_expr()
        if self._accept_op(":"):
            if self._cur.is_op(",", ")"):
                return ast.Slice(lo, None, loc=loc)
            hi = self._parse_expr()
            return ast.Slice(lo, hi, loc=loc)
        return lo

    def _parse_vector(self) -> ast.Expr:
        loc = self._expect_op("[").location
        first = self._parse_expr()
        if self._accept_op(":"):
            hi = self._parse_expr()
            self._expect_op("]")
            return ast.RangeVec(first, hi, loc=loc)
        items = [first]
        while self._accept_op(","):
            items.append(self._parse_expr())
        self._expect_op("]")
        return ast.VectorLit(items, loc=loc)


def parse_source(source: str, filename: str = "<string>") -> ast.SourceFile:
    """Parse a MiniF source text into a :class:`~repro.lang.ast.SourceFile`."""
    return Parser(tokenize(source, filename)).parse_source()


def parse_statements(source: str, filename: str = "<string>") -> list[ast.Stmt]:
    """Parse a bare statement list (no PROGRAM wrapper) — handy in tests."""
    parser = Parser(tokenize(source, filename))
    body = parser._parse_body()
    if parser._cur.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input: {parser._cur}", parser._cur.location)
    return body


def parse_expression(source: str, filename: str = "<expr>") -> ast.Expr:
    """Parse a single expression — handy in tests."""
    parser = Parser(tokenize(source, filename))
    expr = parser._parse_expr()
    return expr
