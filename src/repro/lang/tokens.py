"""Token definitions for the MiniF lexer.

MiniF is the pseudo-Fortran dialect used throughout the paper: Fortran 77
control flow (``DO``, ``GOTO``, logical ``IF``), the paper's structured
``WHILE``/``ENDWHILE`` loops, and the F90simd constructs (``WHERE``,
``FORALL``, vector literals such as ``[1:P]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from .errors import SourceLocation


class TokenKind(Enum):
    """Classification of a lexed token."""

    NAME = auto()       #: identifier (case-insensitive, stored lowercase)
    KEYWORD = auto()    #: reserved word (stored uppercase)
    INT = auto()        #: integer literal
    REAL = auto()       #: floating-point literal
    STRING = auto()     #: quoted string literal
    OP = auto()         #: operator or punctuation
    NEWLINE = auto()    #: end of a logical line (after joining continuations)
    EOF = auto()        #: end of input


#: Reserved words of MiniF.  Identifiers may not shadow these.
KEYWORDS = frozenset(
    {
        "PROGRAM",
        "SUBROUTINE",
        "FUNCTION",
        "END",
        "CALL",
        "RETURN",
        "STOP",
        "INTEGER",
        "REAL",
        "LOGICAL",
        "PARAMETER",
        "DIMENSION",
        "DO",
        "ENDDO",
        "WHILE",
        "ENDWHILE",
        "IF",
        "THEN",
        "ELSE",
        "ELSEIF",
        "ENDIF",
        "WHERE",
        "ELSEWHERE",
        "ENDWHERE",
        "FORALL",
        "ENDFORALL",
        "GOTO",
        "CONTINUE",
        "EXIT",
        "CYCLE",
        "TRUE",
        "FALSE",
        "DECOMPOSITION",
        "ALIGN",
        "WITH",
        "DISTRIBUTE",
        "REPLICATED",
        "SCALARHOST",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPS = (
    "**",
    "==",
    "/=",
    "<=",
    ">=",
)

#: Single-character operators and punctuation.
SINGLE_CHAR_OPS = "+-*/=<>(),:[]"

#: Dotted operator words (``.LE.`` etc.) mapped to their symbolic spelling.
DOTTED_OPS = {
    "EQ": "==",
    "NE": "/=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
    "AND": ".AND.",
    "OR": ".OR.",
    "NOT": ".NOT.",
    "TRUE": ".TRUE.",
    "FALSE": ".FALSE.",
}


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    Attributes:
        kind: The :class:`TokenKind`.
        text: Canonical text (keywords uppercase, names lowercase,
            dotted comparison operators normalized to symbolic form).
        location: Source position of the token's first character.
        first_on_line: True when this token starts a logical line; the
            parser uses this to recognize numeric statement labels.
    """

    kind: TokenKind
    text: str
    location: SourceLocation = field(default_factory=SourceLocation)
    first_on_line: bool = False

    def is_kw(self, *names: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_op(self, *ops: str) -> bool:
        """Return True if this token is one of the given operators."""
        return self.kind is TokenKind.OP and self.text in ops

    def __str__(self) -> str:
        if self.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            return self.kind.name
        return f"{self.kind.name}({self.text!r})"
