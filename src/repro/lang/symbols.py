"""Symbol tables for MiniF routines.

A :class:`SymbolTable` is built by scanning a routine's body for
declarations.  Undeclared names fall back to Fortran implicit typing
(``i``–``n`` integer, everything else real) unless the builder is run in
strict mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .errors import SemanticError


@dataclass
class Symbol:
    """One declared (or implicitly typed) name.

    Attributes:
        name: Lowercase identifier.
        base_type: ``"integer"``, ``"real"`` or ``"logical"``.
        dims: Declared dimension expressions (empty for scalars).
        replicated: Declared per-processor replicated (F90simd).
        is_parameter: PARAMETER constant.
        value: Constant expression for parameters.
        is_dummy: Appears in the routine's parameter list.
        implicit: Typed by implicit rules rather than a declaration.
        distribution: Per-dimension distribution specs from a
            DISTRIBUTE directive reached through ALIGN (or directly).
    """

    name: str
    base_type: str
    dims: list[ast.Expr] = field(default_factory=list)
    replicated: bool = False
    is_parameter: bool = False
    value: ast.Expr | None = None
    is_dummy: bool = False
    implicit: bool = False
    distribution: list[str] | None = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


def implicit_type(name: str) -> str:
    """Fortran implicit typing: names starting with i..n are integer."""
    return "integer" if name[:1] in "ijklmn" else "real"


class SymbolTable:
    """Symbols of one routine, plus the Fortran-D mapping directives."""

    def __init__(self, routine_name: str = ""):
        self.routine_name = routine_name
        self._symbols: dict[str, Symbol] = {}
        self.decompositions: dict[str, ast.Decomposition] = {}
        self.alignments: dict[str, str] = {}
        self.distributions: dict[str, list[str]] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self):
        return iter(self._symbols.values())

    def declare(self, symbol: Symbol) -> Symbol:
        """Add a symbol; re-declaration is an error."""
        if symbol.name in self._symbols:
            existing = self._symbols[symbol.name]
            if not existing.implicit:
                raise SemanticError(f"'{symbol.name}' declared twice")
        self._symbols[symbol.name] = symbol
        return symbol

    def get(self, name: str) -> Symbol | None:
        return self._symbols.get(name)

    def lookup(self, name: str, allow_implicit: bool = True) -> Symbol:
        """Find ``name``, creating an implicit scalar if allowed."""
        symbol = self._symbols.get(name)
        if symbol is not None:
            return symbol
        if not allow_implicit:
            raise SemanticError(f"'{name}' is not declared")
        symbol = Symbol(name, implicit_type(name), implicit=True)
        self._symbols[name] = symbol
        return symbol

    def distribution_of(self, name: str) -> list[str] | None:
        """Distribution specs for an array, following ALIGN indirection."""
        symbol = self._symbols.get(name)
        if symbol is not None and symbol.distribution is not None:
            return symbol.distribution
        target = self.alignments.get(name, name)
        return self.distributions.get(target)


def build_symbol_table(routine: ast.Routine, strict: bool = False) -> SymbolTable:
    """Scan a routine's declarations into a :class:`SymbolTable`.

    Args:
        routine: The routine to scan.
        strict: When True, names used but never declared raise
            :class:`~repro.lang.errors.SemanticError` at lookup time
            (the table is created with implicit typing disabled).
    """
    table = SymbolTable(routine.name)
    for stmt in routine.body:
        if isinstance(stmt, ast.Decl):
            base = stmt.base_type
            for entity in stmt.entities:
                if base == "dimension":
                    existing = table.get(entity.name)
                    if existing is not None:
                        existing.dims = list(entity.dims)
                    else:
                        table.declare(
                            Symbol(
                                entity.name,
                                implicit_type(entity.name),
                                list(entity.dims),
                            )
                        )
                else:
                    table.declare(
                        Symbol(entity.name, base, list(entity.dims), stmt.replicated)
                    )
        elif isinstance(stmt, ast.ParamDecl):
            for name, value in zip(stmt.names, stmt.values):
                existing = table.get(name)
                if existing is not None:
                    existing.is_parameter = True
                    existing.value = value
                else:
                    table.declare(
                        Symbol(
                            name,
                            implicit_type(name),
                            is_parameter=True,
                            value=value,
                        )
                    )
        elif isinstance(stmt, ast.Decomposition):
            for entity in stmt.entities:
                table.decompositions[entity.name] = stmt
        elif isinstance(stmt, ast.Align):
            for source in stmt.sources:
                table.alignments[source] = stmt.target
        elif isinstance(stmt, ast.Distribute):
            table.distributions[stmt.name] = list(stmt.specs)
    for param in routine.params:
        symbol = table.get(param)
        if symbol is None:
            if strict:
                raise SemanticError(
                    f"dummy argument '{param}' of {routine.name} has no declaration"
                )
            symbol = table.lookup(param)
        symbol.is_dummy = True
    return table
