"""Source-located diagnostics for the MiniF frontend.

Every error raised while lexing, parsing, or checking a MiniF program
carries a :class:`SourceLocation` so that messages point back at the
offending line and column of the original source text.

:class:`SourceLocation` is the *single* span type of the toolchain:
AST nodes, bytecode instructions (:class:`~repro.vm.isa.Instr`),
runtime crash dumps (:class:`~repro.reliability.MachineSnapshot`) and
compile-time diagnostics (:class:`~repro.diag.Diagnostic`) all carry
this class, so a finding can be traced from source text through
transformed AST and bytecode back to the original line.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position (optionally a span) in a MiniF source text.

    Attributes:
        filename: Name used in diagnostics (often ``"<string>"``).
        line: 1-based line number.
        column: 1-based column number.
        end_line: Last line of the span (0: a point location).
        end_column: Column just past the span on ``end_line`` (0: a
            point location).
    """

    filename: str = "<string>"
    line: int = 0
    column: int = 0
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    @property
    def is_span(self) -> bool:
        """True when the location covers a region, not just a point."""
        return bool(self.end_line)

    def span_text(self) -> str:
        """``file:line:col`` for points, ``file:line:col-line:col`` for spans."""
        if not self.is_span:
            return str(self)
        return f"{self}-{self.end_line}:{self.end_column}"

    def to_dict(self) -> dict:
        """The JSON shape shared by crash dumps and lint diagnostics."""
        out: dict = {
            "filename": self.filename,
            "line": self.line,
            "column": self.column,
        }
        if self.is_span:
            out["end_line"] = self.end_line
            out["end_column"] = self.end_column
        return out

    def until(self, other: "SourceLocation | None") -> "SourceLocation":
        """This location widened into a span ending at ``other``."""
        if other is None or not other.line or other.filename != self.filename:
            return self
        if (other.line, other.column) <= (self.line, self.column):
            return self
        return SourceLocation(
            self.filename, self.line, self.column, other.line, other.column
        )


#: Location used when no better information is available.
UNKNOWN_LOCATION = SourceLocation()


class MiniFError(Exception):
    """Base class for all MiniF frontend errors.

    Attributes:
        message: Human-readable description of the problem.
        location: Where in the source the problem was detected.
    """

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class LexError(MiniFError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""


class ParseError(MiniFError):
    """Raised when the parser meets an unexpected token."""


class SemanticError(MiniFError):
    """Raised by semantic checking (undeclared names, arity mismatches, ...)."""


class TransformError(MiniFError):
    """Raised when a code transformation cannot be applied safely."""


class CompileError(MiniFError):
    """Raised by strict compilation when static diagnostics find errors.

    Attributes:
        diagnostics: The error-severity
            :class:`~repro.diag.Diagnostic` findings that failed the
            compile (warnings are not included).
    """

    def __init__(self, message: str, diagnostics=(), location=UNKNOWN_LOCATION):
        super().__init__(message, location)
        self.diagnostics = tuple(diagnostics)


class InterpreterError(MiniFError):
    """Raised when program execution goes wrong (bad subscript, type clash, ...)."""
