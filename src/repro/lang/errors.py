"""Source-located diagnostics for the MiniF frontend.

Every error raised while lexing, parsing, or checking a MiniF program
carries a :class:`SourceLocation` so that messages point back at the
offending line and column of the original source text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a MiniF source text.

    Attributes:
        filename: Name used in diagnostics (often ``"<string>"``).
        line: 1-based line number.
        column: 1-based column number.
    """

    filename: str = "<string>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used when no better information is available.
UNKNOWN_LOCATION = SourceLocation()


class MiniFError(Exception):
    """Base class for all MiniF frontend errors.

    Attributes:
        message: Human-readable description of the problem.
        location: Where in the source the problem was detected.
    """

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class LexError(MiniFError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""


class ParseError(MiniFError):
    """Raised when the parser meets an unexpected token."""


class SemanticError(MiniFError):
    """Raised by semantic checking (undeclared names, arity mismatches, ...)."""


class TransformError(MiniFError):
    """Raised when a code transformation cannot be applied safely."""


class InterpreterError(MiniFError):
    """Raised when program execution goes wrong (bad subscript, type clash, ...)."""
