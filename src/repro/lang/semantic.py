"""Semantic checks for MiniF.

The checker validates a parsed source file before it is interpreted or
transformed:

* every GOTO targets an existing label in the same routine;
* no label is defined twice in a routine;
* array references have the declared rank (full-array references and
  sections are allowed, Fortran-90 style);
* CALL statements name a subroutine defined in the same file (or one
  registered as external) with matching arity;
* EXIT/CYCLE appear inside loops;
* DO loop variables are scalars.

The checker is deliberately permissive about types: MiniF interpreters
are dynamically typed, matching the paper's pseudo-Fortran usage where
the same program text is read at F77, F77D and F90simd levels.
"""

from __future__ import annotations

from . import ast
from .errors import SemanticError
from .symbols import SymbolTable, build_symbol_table


class SemanticChecker:
    """Checks one :class:`~repro.lang.ast.SourceFile`."""

    def __init__(self, source: ast.SourceFile, externals: set[str] | None = None):
        self.source = source
        self.externals = externals or set()
        self.tables: dict[str, SymbolTable] = {}
        self._subroutines = {
            unit.name: unit for unit in source.units if unit.kind == "subroutine"
        }

    def check(self) -> dict[str, SymbolTable]:
        """Run all checks; returns the per-routine symbol tables."""
        for unit in self.source.units:
            self.tables[unit.name] = self._check_routine(unit)
        return self.tables

    def _check_routine(self, routine: ast.Routine) -> SymbolTable:
        table = build_symbol_table(routine)
        labels = self._collect_labels(routine)
        self._check_body(routine, table, labels, routine.body, loop_depth=0)
        return table

    @staticmethod
    def _collect_labels(routine: ast.Routine) -> set[int]:
        labels: set[int] = set()
        for node in ast.walk_body(routine.body):
            if isinstance(node, ast.Stmt) and node.label is not None:
                if node.label in labels:
                    raise SemanticError(
                        f"label {node.label} defined twice in {routine.name}",
                        node.loc,
                    )
                labels.add(node.label)
        return labels

    def _check_body(self, routine, table, labels, body, loop_depth) -> None:
        for stmt in body:
            self._check_stmt(routine, table, labels, stmt, loop_depth)

    def _check_stmt(self, routine, table, labels, stmt, loop_depth) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_expr(table, stmt.target, is_target=True)
            self._check_expr(table, stmt.value)
        elif isinstance(stmt, ast.Do):
            symbol = table.lookup(stmt.var)
            if symbol.is_array:
                raise SemanticError(
                    f"DO variable '{stmt.var}' is an array", stmt.loc
                )
            self._check_expr(table, stmt.lo)
            self._check_expr(table, stmt.hi)
            if stmt.stride is not None:
                self._check_expr(table, stmt.stride)
            self._check_body(routine, table, labels, stmt.body, loop_depth + 1)
        elif isinstance(stmt, (ast.DoWhile, ast.While)):
            self._check_expr(table, stmt.cond)
            self._check_body(routine, table, labels, stmt.body, loop_depth + 1)
        elif isinstance(stmt, ast.If):
            self._check_expr(table, stmt.cond)
            self._check_body(routine, table, labels, stmt.then_body, loop_depth)
            self._check_body(routine, table, labels, stmt.else_body, loop_depth)
        elif isinstance(stmt, ast.Where):
            self._check_expr(table, stmt.mask)
            self._check_body(routine, table, labels, stmt.then_body, loop_depth)
            self._check_body(routine, table, labels, stmt.else_body, loop_depth)
        elif isinstance(stmt, ast.Forall):
            table.lookup(stmt.var)
            self._check_expr(table, stmt.lo)
            self._check_expr(table, stmt.hi)
            if stmt.mask is not None:
                self._check_expr(table, stmt.mask)
            self._check_body(routine, table, labels, stmt.body, loop_depth + 1)
        elif isinstance(stmt, ast.Goto):
            if stmt.target not in labels:
                raise SemanticError(
                    f"GOTO {stmt.target}: no such label in {routine.name}", stmt.loc
                )
        elif isinstance(stmt, (ast.ExitStmt, ast.CycleStmt)):
            if loop_depth == 0:
                keyword = "EXIT" if isinstance(stmt, ast.ExitStmt) else "CYCLE"
                raise SemanticError(f"{keyword} outside of a loop", stmt.loc)
        elif isinstance(stmt, ast.CallStmt):
            self._check_call(table, stmt)
        elif isinstance(
            stmt,
            (
                ast.Continue,
                ast.Return,
                ast.Stop,
                ast.Decl,
                ast.ParamDecl,
                ast.Decomposition,
                ast.Align,
                ast.Distribute,
            ),
        ):
            pass
        else:
            raise SemanticError(
                f"unknown statement {type(stmt).__name__}", stmt.loc
            )

    def _check_call(self, table: SymbolTable, stmt: ast.CallStmt) -> None:
        target = self._subroutines.get(stmt.name)
        if target is None:
            if stmt.name in self.externals:
                for arg in stmt.args:
                    self._check_expr(table, arg)
                return
            raise SemanticError(f"CALL to unknown subroutine '{stmt.name}'", stmt.loc)
        if len(target.params) != len(stmt.args):
            raise SemanticError(
                f"CALL {stmt.name}: expected {len(target.params)} arguments, "
                f"got {len(stmt.args)}",
                stmt.loc,
            )
        for arg in stmt.args:
            self._check_expr(table, arg)

    def _check_expr(self, table: SymbolTable, expr: ast.Expr, is_target: bool = False) -> None:
        if isinstance(expr, (ast.IntLit, ast.RealLit, ast.BoolLit, ast.StringLit)):
            if is_target:
                raise SemanticError("cannot assign to a literal", expr.loc)
        elif isinstance(expr, ast.Var):
            table.lookup(expr.name)
        elif isinstance(expr, ast.ArrayRef):
            symbol = table.lookup(expr.name)
            if symbol.is_array and len(expr.subs) != symbol.rank:
                raise SemanticError(
                    f"'{expr.name}' has rank {symbol.rank}, "
                    f"subscripted with {len(expr.subs)} subscripts",
                    expr.loc,
                )
            if not symbol.is_array and not symbol.implicit:
                raise SemanticError(
                    f"'{expr.name}' is scalar but subscripted", expr.loc
                )
            for sub in expr.subs:
                self._check_expr(table, sub)
        elif isinstance(expr, ast.Slice):
            if expr.lo is not None:
                self._check_expr(table, expr.lo)
            if expr.hi is not None:
                self._check_expr(table, expr.hi)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._check_expr(table, arg)
        elif isinstance(expr, ast.VectorLit):
            for item in expr.items:
                self._check_expr(table, item)
        elif isinstance(expr, ast.RangeVec):
            self._check_expr(table, expr.lo)
            self._check_expr(table, expr.hi)
        elif isinstance(expr, ast.BinOp):
            self._check_expr(table, expr.left)
            self._check_expr(table, expr.right)
        elif isinstance(expr, ast.UnOp):
            self._check_expr(table, expr.operand)
        else:
            raise SemanticError(f"unknown expression {type(expr).__name__}", expr.loc)


def check_source(
    source: ast.SourceFile, externals: set[str] | None = None
) -> dict[str, SymbolTable]:
    """Semantically check a source file; returns per-routine symbol tables."""
    return SemanticChecker(source, externals).check()
