"""Abstract syntax tree for MiniF.

Nodes are plain dataclasses.  Structural equality ignores source
locations, so two parses of the same program (or a parse of a
pretty-printed program) compare equal — the property the round-trip
tests rely on.

The tree distinguishes the constructs the paper manipulates:

* the F77 loop family — ``DO``, ``DO WHILE``, ``GOTO`` loops;
* the paper's structured ``WHILE``/``ENDWHILE``;
* the F90simd constructs — ``WHERE``/``ELSEWHERE``, ``FORALL``,
  vector literals ``[a, b]`` and iota ranges ``[lo : hi]``;
* Fortran-D data-mapping directives (``DECOMPOSITION``/``ALIGN``/
  ``DISTRIBUTE``), kept as statements so layouts survive transforms.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import UNKNOWN_LOCATION, SourceLocation


@dataclass(eq=True)
class Node:
    """Base class of every AST node."""

    loc: SourceLocation = field(
        default=UNKNOWN_LOCATION, compare=False, repr=False, kw_only=True
    )


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class Expr(Node):
    """Base class for expressions."""


@dataclass(eq=True)
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass(eq=True)
class RealLit(Expr):
    """Floating-point literal (text kept for faithful printing)."""

    value: float
    text: str = field(default="", compare=False)


@dataclass(eq=True)
class BoolLit(Expr):
    """``.TRUE.`` / ``.FALSE.``"""

    value: bool


@dataclass(eq=True)
class StringLit(Expr):
    """Quoted string literal."""

    value: str


@dataclass(eq=True)
class Var(Expr):
    """Reference to a scalar variable (or whole array, Fortran-90 style)."""

    name: str


@dataclass(eq=True)
class Slice(Expr):
    """Array section bound pair ``lo:hi``; ``None`` means the full extent."""

    lo: Expr | None = None
    hi: Expr | None = None


@dataclass(eq=True)
class ArrayRef(Expr):
    """Subscripted array reference ``name(sub, ...)``.

    Subscripts are expressions or :class:`Slice` sections.  A function
    call is syntactically identical; name resolution (see
    :mod:`repro.lang.semantic`) rewrites calls to :class:`Call`.
    """

    name: str
    subs: list[Expr]


@dataclass(eq=True)
class VectorLit(Expr):
    """Per-processor vector literal, e.g. ``[0, 4]`` from the paper's P4."""

    items: list[Expr]


@dataclass(eq=True)
class RangeVec(Expr):
    """Per-processor iota vector ``[lo : hi]``, e.g. ``at1 = [1 : P]``."""

    lo: Expr
    hi: Expr


@dataclass(eq=True)
class BinOp(Expr):
    """Binary operation; ``op`` is the symbolic spelling (``+``, ``<=``, ``.AND.``)."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=True)
class UnOp(Expr):
    """Unary operation: ``-``, ``+`` or ``.NOT.``."""

    op: str
    operand: Expr


@dataclass(eq=True)
class Call(Expr):
    """Intrinsic or user function call in an expression."""

    name: str
    args: list[Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class Stmt(Node):
    """Base class for statements.  ``label`` is the numeric Fortran label."""

    label: int | None = field(default=None, kw_only=True)


@dataclass(eq=True)
class Assign(Stmt):
    """Assignment ``target = value``; target is a Var or ArrayRef."""

    target: Expr
    value: Expr


@dataclass(eq=True)
class Do(Stmt):
    """Counted loop ``DO var = lo, hi [, stride] ... ENDDO``."""

    var: str
    lo: Expr
    hi: Expr
    stride: Expr | None
    body: list[Stmt]


@dataclass(eq=True)
class DoWhile(Stmt):
    """``DO WHILE (cond) ... ENDDO``."""

    cond: Expr
    body: list[Stmt]


@dataclass(eq=True)
class While(Stmt):
    """The paper's ``WHILE cond ... ENDWHILE`` loop.

    In F90simd programs the condition may be vector-valued, in which
    case execution continues while ``ANY`` element holds (the paper's
    array-controlled WHILE extension).
    """

    cond: Expr
    body: list[Stmt]


@dataclass(eq=True)
class If(Stmt):
    """``IF (cond) THEN ... [ELSE ...] ENDIF`` (ELSEIF nests in else_body)."""

    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt] = field(default_factory=list)


@dataclass(eq=True)
class Where(Stmt):
    """``WHERE (mask) ... [ELSEWHERE ...] ENDWHERE`` masked execution."""

    mask: Expr
    then_body: list[Stmt]
    else_body: list[Stmt] = field(default_factory=list)


@dataclass(eq=True)
class Forall(Stmt):
    """``FORALL (var = lo : hi [, mask]) body`` — parallel loop.

    The paper extends FORALL to whole blocks; ``body`` is a block.
    """

    var: str
    lo: Expr
    hi: Expr
    mask: Expr | None
    body: list[Stmt]


@dataclass(eq=True)
class Goto(Stmt):
    """``GOTO label``."""

    target: int


@dataclass(eq=True)
class Continue(Stmt):
    """``CONTINUE`` (no-op; usually carries a label)."""


@dataclass(eq=True)
class ExitStmt(Stmt):
    """``EXIT`` — leave the innermost loop."""


@dataclass(eq=True)
class CycleStmt(Stmt):
    """``CYCLE`` — next iteration of the innermost loop."""


@dataclass(eq=True)
class CallStmt(Stmt):
    """``CALL name(args)``."""

    name: str
    args: list[Expr]


@dataclass(eq=True)
class Return(Stmt):
    """``RETURN`` from a subroutine."""


@dataclass(eq=True)
class Stop(Stmt):
    """``STOP`` — terminate the program."""


@dataclass(eq=True)
class Decl(Stmt):
    """Type declaration ``INTEGER a, b(10, 20)``.

    Attributes:
        base_type: ``"integer"``, ``"real"`` or ``"logical"``.
        entities: Declared names with their (possibly empty) dimension lists.
        replicated: True for per-processor replicated variables in
            F90simd programs (the paper's default for scalars).
    """

    base_type: str
    entities: list[DeclEntity]
    replicated: bool = False


@dataclass(eq=True)
class DeclEntity(Node):
    """One declared entity: a name plus its dimension expressions."""

    name: str
    dims: list[Expr] = field(default_factory=list)


@dataclass(eq=True)
class ParamDecl(Stmt):
    """``PARAMETER (name = value, ...)`` named constants."""

    names: list[str]
    values: list[Expr]


@dataclass(eq=True)
class Decomposition(Stmt):
    """Fortran-D ``DECOMPOSITION d(dims)`` directive."""

    entities: list[DeclEntity]


@dataclass(eq=True)
class Align(Stmt):
    """Fortran-D ``ALIGN a WITH d`` directive."""

    sources: list[str]
    target: str


@dataclass(eq=True)
class Distribute(Stmt):
    """Fortran-D ``DISTRIBUTE d(BLOCK, *)`` directive.

    ``specs`` holds one distribution keyword per dimension:
    ``"block"``, ``"cyclic"`` or ``"*"`` (serial).
    """

    name: str
    specs: list[str]


# ---------------------------------------------------------------------------
# Program units
# ---------------------------------------------------------------------------


@dataclass(eq=True)
class Routine(Node):
    """A program unit: ``PROGRAM`` or ``SUBROUTINE``.

    Declarations appear in ``body`` as ordinary :class:`Decl` statements,
    which keeps transformations uniform (they may insert declarations).
    """

    kind: str  #: "program" or "subroutine"
    name: str
    params: list[str]
    body: list[Stmt]


@dataclass(eq=True)
class SourceFile(Node):
    """A whole MiniF source: one or more routines."""

    units: list[Routine]

    def unit(self, name: str) -> Routine:
        """Look up a routine by (lowercase) name."""
        for routine in self.units:
            if routine.name == name:
                return routine
        raise KeyError(name)

    @property
    def main(self) -> Routine:
        """The first PROGRAM unit (or the first unit if none is a PROGRAM)."""
        for routine in self.units:
            if routine.kind == "program":
                return routine
        return self.units[0]


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def children(node: Node):
    """Yield the direct child nodes of ``node`` (fields and list fields)."""
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node):
    """Yield ``node`` and every descendant, preorder."""
    yield node
    for child in children(node):
        yield from walk(child)


def walk_body(body: list[Stmt]):
    """Yield every node in a statement list, preorder."""
    for stmt in body:
        yield from walk(stmt)


def copy_node(node: Node, **overrides):
    """Shallow-copy a node, overriding the given fields."""
    return dataclasses.replace(node, **overrides)


def clone(node):
    """Deep-copy an AST node (or list of nodes)."""
    if isinstance(node, list):
        return [clone(item) for item in node]
    if not isinstance(node, Node):
        return node
    kwargs = {}
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            kwargs[f.name] = clone(value)
        elif isinstance(value, list):
            kwargs[f.name] = [clone(item) for item in value]
        else:
            kwargs[f.name] = value
    return type(node)(**kwargs)


#: Statement classes that contain nested statement bodies.
BLOCK_STMTS = (Do, DoWhile, While, If, Where, Forall)


def sub_bodies(stmt: Stmt) -> list[list[Stmt]]:
    """Return the nested statement lists of a block statement (possibly empty)."""
    if isinstance(stmt, (Do, DoWhile, While, Forall)):
        return [stmt.body]
    if isinstance(stmt, If):
        return [stmt.then_body, stmt.else_body]
    if isinstance(stmt, Where):
        return [stmt.then_body, stmt.else_body]
    return []
