"""Line-oriented lexer for MiniF.

Handles the Fortran-flavored surface details so the parser can work on a
clean token stream:

* comments — a ``C`` or ``*`` in column one, or ``!`` anywhere;
* compiler directives (``cmf$ ...``, ``cmpf ...``) are treated as comments;
* continuation lines — a trailing ``&`` joins the next physical line;
* dotted operators — ``.LE.``, ``.AND.``, ``.TRUE.`` are normalized;
* case-insensitivity — keywords are stored uppercase, names lowercase.

The lexer emits an explicit :data:`~repro.lang.tokens.TokenKind.NEWLINE`
token at the end of every non-empty logical line, which is how the
line-oriented grammar delimits statements.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import (
    DOTTED_OPS,
    KEYWORDS,
    MULTI_CHAR_OPS,
    SINGLE_CHAR_OPS,
    Token,
    TokenKind,
)

_DIRECTIVE_PREFIXES = ("cmf$", "cmpf", "!hpf$", "chpf$")


def _is_comment_line(raw: str) -> bool:
    stripped = raw.lstrip()
    if not stripped:
        return True
    if raw[:1] in ("C", "c", "*") and (len(raw) == 1 or not raw[1].isalnum()):
        return True
    if stripped.startswith("!"):
        return True
    lowered = stripped.lower()
    return any(lowered.startswith(prefix) for prefix in _DIRECTIVE_PREFIXES)


def _strip_inline_comment(line: str) -> str:
    """Drop a trailing ``!`` comment (MiniF has no ``!`` inside strings we keep)."""
    in_string = False
    for i, ch in enumerate(line):
        if ch == "'":
            in_string = not in_string
        elif ch == "!" and not in_string:
            return line[:i]
    return line


class Lexer:
    """Tokenizer for a complete MiniF source text."""

    def __init__(self, source: str, filename: str = "<string>"):
        self.source = source
        self.filename = filename

    def tokens(self) -> list[Token]:
        """Lex the whole source and return the token list (ending in EOF)."""
        out: list[Token] = []
        for line_no, text in self._logical_lines():
            start = len(out)
            self._lex_line(text, line_no, out)
            if len(out) > start:
                object.__setattr__(out[start], "first_on_line", True)
                out.append(
                    Token(
                        TokenKind.NEWLINE,
                        "\n",
                        SourceLocation(self.filename, line_no, len(text) + 1),
                    )
                )
        out.append(Token(TokenKind.EOF, "", SourceLocation(self.filename, 0, 0)))
        return out

    def _logical_lines(self):
        """Yield ``(first_line_number, text)`` with continuations joined."""
        physical = self.source.splitlines()
        i = 0
        while i < len(physical):
            raw = physical[i]
            line_no = i + 1
            i += 1
            if _is_comment_line(raw):
                continue
            text = _strip_inline_comment(raw).rstrip()
            while text.endswith("&"):
                text = text[:-1].rstrip()
                while i < len(physical) and _is_comment_line(physical[i]):
                    i += 1
                if i < len(physical):
                    continuation = _strip_inline_comment(physical[i]).strip()
                    if continuation.startswith("&"):
                        continuation = continuation[1:].lstrip()
                    text = text + " " + continuation.rstrip()
                    i += 1
                else:
                    break
            if text.strip():
                yield line_no, text

    def _lex_line(self, text: str, line_no: int, out: list[Token]) -> None:
        pos = 0
        n = len(text)
        while pos < n:
            ch = text[pos]
            if ch in " \t":
                pos += 1
                continue
            loc = SourceLocation(self.filename, line_no, pos + 1)
            if ch.isdigit() or (ch == "." and self._starts_number(text, pos)):
                pos = self._lex_number(text, pos, loc, out)
            elif ch.isalpha() or ch == "_":
                pos = self._lex_word(text, pos, loc, out)
            elif ch == ".":
                pos = self._lex_dotted(text, pos, loc, out)
            elif ch == "'":
                pos = self._lex_string(text, pos, loc, out)
            else:
                pos = self._lex_operator(text, pos, loc, out)

    @staticmethod
    def _starts_number(text: str, pos: int) -> bool:
        """Is ``.`` at ``pos`` the start of a real literal like ``.5``?"""
        return pos + 1 < len(text) and text[pos + 1].isdigit()

    def _lex_number(self, text: str, pos: int, loc: SourceLocation, out: list[Token]) -> int:
        n = len(text)
        start = pos
        is_real = False
        while pos < n and text[pos].isdigit():
            pos += 1
        if pos < n and text[pos] == "." and not self._dot_is_operator(text, pos):
            is_real = True
            pos += 1
            while pos < n and text[pos].isdigit():
                pos += 1
        if pos < n and text[pos] in "eEdD":
            exp = pos + 1
            if exp < n and text[exp] in "+-":
                exp += 1
            if exp < n and text[exp].isdigit():
                is_real = True
                pos = exp
                while pos < n and text[pos].isdigit():
                    pos += 1
        literal = text[start:pos]
        if is_real:
            out.append(Token(TokenKind.REAL, literal.lower().replace("d", "e"), loc))
        else:
            out.append(Token(TokenKind.INT, literal, loc))
        return pos

    @staticmethod
    def _dot_is_operator(text: str, pos: int) -> bool:
        """Return True when the ``.`` at ``pos`` begins a dotted operator.

        Distinguishes ``1.5`` (part of a real literal) from ``1.LE.2``
        (the ``.LE.`` comparison).
        """
        rest = text[pos + 1:]
        word = ""
        for ch in rest:
            if ch.isalpha():
                word += ch
            else:
                break
        if not word:
            return False
        return (
            word.upper() in DOTTED_OPS
            and len(rest) > len(word)
            and rest[len(word)] == "."
        )

    def _lex_word(self, text: str, pos: int, loc: SourceLocation, out: list[Token]) -> int:
        n = len(text)
        start = pos
        while pos < n and (text[pos].isalnum() or text[pos] == "_"):
            pos += 1
        word = text[start:pos]
        upper = word.upper()
        if upper in KEYWORDS:
            out.append(Token(TokenKind.KEYWORD, upper, loc))
        else:
            out.append(Token(TokenKind.NAME, word.lower(), loc))
        return pos

    def _lex_dotted(self, text: str, pos: int, loc: SourceLocation, out: list[Token]) -> int:
        n = len(text)
        end = text.find(".", pos + 1)
        if end == -1:
            raise LexError(f"unterminated dotted operator near {text[pos:pos + 6]!r}", loc)
        word = text[pos + 1:end].upper()
        if word not in DOTTED_OPS:
            raise LexError(f"unknown dotted operator '.{word}.'", loc)
        spelling = DOTTED_OPS[word]
        if spelling in (".TRUE.", ".FALSE."):
            out.append(Token(TokenKind.KEYWORD, word, loc))
        else:
            out.append(Token(TokenKind.OP, spelling, loc))
        return end + 1

    def _lex_string(self, text: str, pos: int, loc: SourceLocation, out: list[Token]) -> int:
        end = text.find("'", pos + 1)
        if end == -1:
            raise LexError("unterminated string literal", loc)
        out.append(Token(TokenKind.STRING, text[pos + 1:end], loc))
        return end + 1

    def _lex_operator(self, text: str, pos: int, loc: SourceLocation, out: list[Token]) -> int:
        for op in MULTI_CHAR_OPS:
            if text.startswith(op, pos):
                out.append(Token(TokenKind.OP, op, loc))
                return pos + len(op)
        ch = text[pos]
        if ch in SINGLE_CHAR_OPS:
            out.append(Token(TokenKind.OP, ch, loc))
            return pos + 1
        raise LexError(f"unexpected character {ch!r}", loc)


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Convenience wrapper: lex ``source`` and return the token list."""
    return Lexer(source, filename).tokens()
