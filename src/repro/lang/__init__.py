"""MiniF: the pseudo-Fortran frontend used by the loop-flattening compiler.

MiniF covers the language family of the paper: Fortran 77 control flow,
Fortran-D data mapping directives, and the F90simd constructs (WHERE,
FORALL, replicated scalars, vector literals).

Typical use::

    from repro.lang import parse_source, format_source, check_source

    tree = parse_source(text)
    check_source(tree)
    print(format_source(tree))
"""

from . import ast
from .errors import (
    CompileError,
    InterpreterError,
    LexError,
    MiniFError,
    ParseError,
    SemanticError,
    SourceLocation,
    TransformError,
)
from .lexer import tokenize
from .parser import parse_expression, parse_source, parse_statements
from .printer import (
    format_expr,
    format_routine,
    format_source,
    format_statements,
)
from .semantic import check_source
from .symbols import Symbol, SymbolTable, build_symbol_table

__all__ = [
    "ast",
    "tokenize",
    "parse_source",
    "parse_statements",
    "parse_expression",
    "format_source",
    "format_routine",
    "format_statements",
    "format_expr",
    "check_source",
    "build_symbol_table",
    "Symbol",
    "SymbolTable",
    "MiniFError",
    "LexError",
    "ParseError",
    "SemanticError",
    "TransformError",
    "CompileError",
    "InterpreterError",
    "SourceLocation",
]
