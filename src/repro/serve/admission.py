"""Per-tenant admission control for the serve layer.

The reliability layer already knows how to bound one execution
(:class:`~repro.reliability.Budget`) and how to degrade it
(:class:`~repro.reliability.FallbackPolicy`); admission control is the
service-shaped wrapper: each tenant gets a :class:`TenantPolicy`
naming its concurrency ceiling and the budget/fallback applied to
every run it submits, and the controller enforces a global in-flight
ceiling on top.  A request over either ceiling is rejected *before*
any work is queued — HTTP 429 at the front end — which keeps one
noisy tenant from starving the worker pool for everyone else.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..reliability import Budget, FallbackPolicy


class AdmissionError(Exception):
    """Request rejected at admission (maps to HTTP 429)."""

    def __init__(self, message: str, tenant: str):
        super().__init__(message)
        self.tenant = tenant


@dataclass(frozen=True)
class TenantPolicy:
    """Service limits and execution guards for one tenant.

    Attributes:
        name: Tenant identifier (the request's ``tenant`` field).
        max_inflight: Concurrent requests this tenant may have queued
            or running (None = no per-tenant ceiling).
        max_steps: Step budget applied to each of the tenant's runs
            (None = engine default).
        deadline_seconds: Wall-clock budget per run.
        fallback: Backend fallback chain for the tenant's runs, e.g.
            ``("vm", "interpreter")``; empty = no policy, faults
            surface directly.
    """

    name: str = "default"
    max_inflight: int | None = None
    max_steps: int | None = None
    deadline_seconds: float | None = None
    fallback: tuple[str, ...] = field(default_factory=tuple)

    def budget(self) -> Budget | None:
        """The per-run Budget this policy implies (None = default)."""
        if self.max_steps is None and self.deadline_seconds is None:
            return None
        spec: dict = {}
        if self.max_steps is not None:
            spec["max_steps"] = self.max_steps
        if self.deadline_seconds is not None:
            spec["deadline_seconds"] = self.deadline_seconds
        return Budget(**spec)

    def policy(self) -> FallbackPolicy | None:
        """The FallbackPolicy this policy implies (None = no chain)."""
        if not self.fallback:
            return None
        return FallbackPolicy(chain=tuple(self.fallback))


class _Ticket:
    """Context manager releasing one admitted slot."""

    def __init__(self, controller: "AdmissionController", tenant: str):
        self._controller = controller
        self._tenant = tenant

    def __enter__(self) -> "_Ticket":
        return self

    def __exit__(self, *_exc) -> None:
        self._controller._release(self._tenant)


class AdmissionController:
    """Tracks in-flight work per tenant and enforces the ceilings.

    Args:
        max_inflight: Global concurrent-request ceiling across all
            tenants (None = unbounded).
        default: Policy applied to tenants with no registered policy.
    """

    def __init__(
        self,
        max_inflight: int | None = None,
        default: TenantPolicy | None = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.default = default if default is not None else TenantPolicy()
        self._policies: dict[str, TenantPolicy] = {}
        self._inflight: dict[str, int] = {}
        self._total = 0
        self._lock = threading.Lock()

    def register(self, policy: TenantPolicy) -> None:
        """Install (or replace) one tenant's policy."""
        self._policies[policy.name] = policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self.default)

    def admit(self, tenant: str) -> _Ticket:
        """Claim a slot for one request; raises :class:`AdmissionError`.

        Use as a context manager so the slot is released on every exit
        path::

            with admission.admit(tenant):
                ... serve the request ...
        """
        policy = self.policy_for(tenant)
        with self._lock:
            if self.max_inflight is not None and self._total >= self.max_inflight:
                raise AdmissionError(
                    f"service at capacity ({self.max_inflight} in flight)",
                    tenant,
                )
            mine = self._inflight.get(tenant, 0)
            if policy.max_inflight is not None and mine >= policy.max_inflight:
                raise AdmissionError(
                    f"tenant {tenant!r} at capacity "
                    f"({policy.max_inflight} in flight)",
                    tenant,
                )
            self._inflight[tenant] = mine + 1
            self._total += 1
        return _Ticket(self, tenant)

    def _release(self, tenant: str) -> None:
        with self._lock:
            left = self._inflight.get(tenant, 0) - 1
            if left > 0:
                self._inflight[tenant] = left
            else:
                self._inflight.pop(tenant, None)
            self._total = max(0, self._total - 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "total_inflight": self._total,
                "max_inflight": self.max_inflight,
                "by_tenant": dict(self._inflight),
                "tenants": sorted(self._policies),
            }


__all__ = ["AdmissionController", "AdmissionError", "TenantPolicy"]
