"""Single-flight deduplication of identical in-flight work.

When N requests ask for the same compile (same source SHA + options)
while the first is still running, the engine would happily burn N
worker threads producing one artifact.  :class:`SingleFlight` keys
in-flight work by the Engine's cache digest: the first caller (the
*leader*) runs the thunk, everyone else awaits the leader's future and
shares its result — or its exception, which propagates to every
waiter (each caller may then retry independently; the failed key is
already retired).

The key is retired *before* waiters are woken, so a follow-up request
after a failure starts a fresh flight instead of joining a dead one.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable


class SingleFlight:
    """Coalesces concurrent calls for the same key onto one execution."""

    def __init__(self):
        self._inflight: dict[Any, asyncio.Future] = {}
        self.deduped = 0
        self.flights = 0

    def inflight_count(self) -> int:
        return len(self._inflight)

    async def do(
        self, key: Any, thunk: Callable[[], Awaitable]
    ) -> tuple[Any, bool]:
        """Run ``thunk`` once per in-flight ``key``.

        Returns ``(result, shared)`` — ``shared`` is True when this
        caller rode an already-in-flight execution instead of starting
        its own.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.deduped += 1
            # shield: one waiter's cancellation must not kill the
            # leader's shared future
            return await asyncio.shield(existing), True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.flights += 1
        try:
            result = await thunk()
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # the leader re-raises below; mark the shared future's
                # exception as observed so no "never retrieved" warning
                # fires when there were no waiters
                future.exception()
            raise
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result(result)
        return result, False


__all__ = ["SingleFlight"]
