"""A minimal HTTP/1.1 layer on ``asyncio.start_server``.

No aiohttp, no ``http.server``: the service speaks just enough HTTP
for JSON APIs — request line, headers, ``Content-Length`` bodies,
JSON responses, ``Connection: close`` semantics (one exchange per
connection keeps the state machine trivial; the clients that matter —
curl, urllib, load balancers — all handle it).

Hard limits guard the parser: oversized request lines, header blocks,
or bodies are rejected with 431/413 instead of buffering unbounded
attacker input.  Anything unparsable is a 400; chunked uploads are
declined with 411 (the API has no streaming endpoint).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Parser ceilings.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """Parse-level failure carrying the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body as a JSON object; :class:`HTTPError` 400 otherwise."""
        if not self.body:
            return {}
        try:
            decoded = json.loads(self.body.decode())
        except (UnicodeDecodeError, ValueError) as exc:
            raise HTTPError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(decoded, dict):
            raise HTTPError(
                400, f"body must be a JSON object, got {type(decoded).__name__}"
            )
        return decoded


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; None on a clean EOF.

    Raises :class:`HTTPError` for anything malformed or oversized.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close before a request
        raise HTTPError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPError(431, "request line too long") from exc
    if len(line) > MAX_REQUEST_LINE:
        raise HTTPError(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HTTPError(400, f"malformed request line: {line!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: dict = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise HTTPError(400, "truncated headers") from exc
        if line in (b"\r\n", b"\n"):
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HTTPError(431, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HTTPError(411, "chunked bodies are not supported; send "
                             "Content-Length")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HTTPError(400, f"bad Content-Length: {length_text!r}") from exc
        if length < 0:
            raise HTTPError(400, f"bad Content-Length: {length}")
        if length > MAX_BODY_BYTES:
            raise HTTPError(413, f"body over {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HTTPError(400, "truncated body") from exc
    return Request(method=method, path=path, headers=headers, body=body)


def response_bytes(status: int, payload) -> bytes:
    """A complete JSON response, ready to write."""
    body = json.dumps(payload, default=str).encode()
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


__all__ = [
    "HTTPError",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_REQUEST_LINE",
    "Request",
    "read_request",
    "response_bytes",
]
