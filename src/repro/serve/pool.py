"""The bounded worker pool run execution is dispatched to.

Two jobs:

* **Bounded dispatch.**  The asyncio front end never executes MiniF on
  the event loop; compiles and runs go through
  :meth:`RunnerPool.submit` onto a fixed-size thread pool, so a burst
  of heavy runs queues instead of starving ``/healthz``.  The Engine
  and its backends are thread-safe (PR 1's cache lock), and the
  numpy-heavy hot paths release the GIL enough for the pool to
  overlap real work.

* **pmimd executor reuse (the PR 7 leftover).**  A
  :class:`~repro.exec.pmimd.PMIMDExecutor` owns the parsed SPMD tree
  and its shard plan; rebuilding one per request re-clones the tree
  every time.  The pool keeps an LRU of executors keyed by (program,
  machine shape) so repeated pmimd requests for the same kernel reuse
  the executor object — construction cost is paid once per (kernel,
  shape) instead of once per request.  Worker *processes* are still
  per-run: pmimd inherits bindings via fork, so process lifetime
  cannot outlive the bindings it was forked with.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor


class RunnerPool:
    """Bounded thread-pool executor with pmimd executor reuse.

    Args:
        max_workers: Thread-pool size — the service's execution
            concurrency ceiling.
        executor_cache: Distinct (program, shape) pmimd executors kept
            for reuse (LRU eviction).
    """

    def __init__(self, max_workers: int = 4, executor_cache: int = 8):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if executor_cache < 1:
            raise ValueError(f"executor_cache must be >= 1, got {executor_cache}")
        self.max_workers = max_workers
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._executors: OrderedDict[tuple, object] = OrderedDict()
        self._executor_cache = executor_cache
        self._lock = threading.Lock()
        self.submitted = 0
        self.pmimd_created = 0
        self.pmimd_reused = 0

    async def submit(self, fn, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` on the pool; await its result."""
        with self._lock:
            self.submitted += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._threads, lambda: fn(*args, **kwargs)
        )

    def pmimd_executor(self, program, config):
        """A (possibly reused) PMIMDExecutor for this program + shape.

        Args:
            program: A :class:`~repro.runtime.CompiledProgram` whose
                tree the executor will run.
            config: The :class:`~repro.runtime.BackendConfig` naming
                the machine shape (``nproc``, ``workers``, ``shards``,
                ``shard_layout``).

        Returns:
            ``(executor, reused)`` — the executor plus whether it came
            from the reuse cache.
        """
        from ..exec.pmimd import PMIMDExecutor

        key = (
            program.source_sha,
            program.options,
            config.nproc,
            config.workers,
            config.shards,
            config.shard_layout,
        )
        with self._lock:
            cached = self._executors.get(key)
            if cached is not None:
                self._executors.move_to_end(key)
                self.pmimd_reused += 1
                return cached, True
        executor = PMIMDExecutor.from_config(program.tree, config)
        with self._lock:
            winner = self._executors.setdefault(key, executor)
            self._executors.move_to_end(key)
            while len(self._executors) > self._executor_cache:
                self._executors.popitem(last=False)
            if winner is not executor:
                self.pmimd_reused += 1
                return winner, True
            self.pmimd_created += 1
        return executor, False

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_workers": self.max_workers,
                "submitted": self.submitted,
                "pmimd_executors_created": self.pmimd_created,
                "pmimd_executors_reused": self.pmimd_reused,
                "pmimd_executors_cached": len(self._executors),
            }

    def shutdown(self, wait: bool = True) -> None:
        """Stop the thread pool; queued work is cancelled on ``wait=False``."""
        self._threads.shutdown(wait=wait, cancel_futures=not wait)


__all__ = ["RunnerPool"]
