"""The serve application: routes, lifecycle, graceful shutdown.

Request flow for the hot endpoint (``POST /v1/compile``)::

    admission (per-tenant + global ceilings, 429 over limit)
      └─ single-flight (identical in-flight compiles share one build)
           └─ worker pool (compile off the event loop)
                └─ Engine: memory LRU → ArtifactStore (disk) → pipeline

``POST /v1/run`` rides the same compile path, then dispatches
execution to the bounded :class:`~repro.serve.pool.RunnerPool` with
the tenant's :class:`~repro.reliability.Budget` and
:class:`~repro.reliability.FallbackPolicy` applied; pmimd runs reuse
pooled executors across requests.

Every handler is a plain ``async`` method taking a decoded JSON body
and returning ``(status, payload)``, so the whole API is testable
without a socket; the socket layer (:mod:`repro.serve.http`) is one
connection callback.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ..lang.errors import MiniFError
from ..runtime import BackendConfig, Engine
from ..runtime.result import RunResult
from .admission import AdmissionController, AdmissionError, TenantPolicy
from .http import HTTPError, Request, read_request, response_bytes
from .metrics import ServeMetrics
from .pool import RunnerPool
from .protocol import (
    ProtocolError,
    compile_options,
    decode_bindings,
    encode_run_result,
    error_body,
    require_source,
)
from .singleflight import SingleFlight


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to boot.

    Attributes:
        host: Bind address.
        port: Bind port (0 = pick a free one; the resolved port is on
            :attr:`ServeApp.port` after :meth:`ServeApp.start`).
        store_dir: Persistent artifact-store root (None = memory-only
            caching, cold compiles per process).
        store_max_entries: LRU ceiling on stored artifacts.
        store_max_bytes: LRU ceiling on stored bytes.
        cache_size: In-memory compile-cache entries.
        max_inflight: Global concurrent-request ceiling (429 beyond).
        pool_workers: Execution thread-pool size.
        executor_cache: pmimd executors kept for cross-request reuse.
        tenants: Per-tenant policies (the ``"default"`` entry replaces
            the built-in default policy).
        drain_seconds: Graceful-shutdown budget for in-flight requests.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    store_dir: str | None = None
    store_max_entries: int | None = None
    store_max_bytes: int | None = None
    cache_size: int = 128
    max_inflight: int | None = 64
    pool_workers: int = 4
    executor_cache: int = 8
    tenants: tuple[TenantPolicy, ...] = field(default_factory=tuple)
    drain_seconds: float = 10.0


class ServeApp:
    """The compile-and-run service, socket layer excluded.

    Args:
        config: Service settings.
        engine: Bring your own :class:`~repro.runtime.Engine`
            (tests); by default one is built from the config with the
            persistent store attached.
    """

    def __init__(self, config: ServeConfig | None = None, engine: Engine | None = None):
        self.config = config if config is not None else ServeConfig()
        if engine is None:
            store = None
            if self.config.store_dir is not None:
                from ..runtime.store import ArtifactStore

                store = ArtifactStore(
                    self.config.store_dir,
                    max_entries=self.config.store_max_entries,
                    max_bytes=self.config.store_max_bytes,
                )
            engine = Engine(cache_size=self.config.cache_size, store=store)
        self.engine = engine
        self.metrics = ServeMetrics()
        self.singleflight = SingleFlight()
        self.pool = RunnerPool(
            max_workers=self.config.pool_workers,
            executor_cache=self.config.executor_cache,
        )
        default = TenantPolicy()
        for policy in self.config.tenants:
            if policy.name == "default":
                default = policy
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight, default=default
        )
        for policy in self.config.tenants:
            if policy.name != "default":
                self.admission.register(policy)
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # -- compile path ----------------------------------------------------------

    async def _compile(self, source: str, options: dict):
        """Single-flighted, pool-dispatched Engine.compile.

        Returns ``(program, digest, tier)`` where ``tier`` is
        ``memory``/``disk``/``miss`` from the engine, or ``inflight``
        when this request coalesced onto another request's build.
        """
        key_options = {k: v for k, v in options.items() if k != "strict"}
        digest = self.engine.cache_key(source, **key_options)
        program, shared = await self.singleflight.do(
            digest,
            lambda: self.pool.submit(self.engine.compile, source, **options),
        )
        tier = "inflight" if shared else program.cache_tier
        if shared:
            self.metrics.deduped()
        self.metrics.cache_tier(tier)
        return program, digest, tier

    # -- handlers --------------------------------------------------------------

    async def handle_compile(self, body: dict) -> tuple[int, dict]:
        source = require_source(body)
        options = compile_options(body)
        tenant = str(body.get("tenant", "default"))
        with self.admission.admit(tenant):
            program, digest, tier = await self._compile(source, options)
        report = await self.pool.submit(program.diagnostics)
        return 200, {
            "key": digest,
            "cache": tier,
            "source_sha": program.source_sha,
            "transform": program.options.transform,
            "bytecode": program.bytecode() is not None,
            "diagnostics": report.summary(),
            "stage_seconds": dict(program.stage_seconds),
        }

    async def handle_run(self, body: dict) -> tuple[int, dict]:
        source = require_source(body)
        options = compile_options(body, run=True)
        tenant = str(body.get("tenant", "default"))
        bindings = decode_bindings(body.get("bindings"))
        nproc = body.get("nproc", 0)
        if not isinstance(nproc, int) or isinstance(nproc, bool) or nproc < 0:
            raise ProtocolError(f"'nproc' must be a non-negative int, got {nproc!r}")
        backend = str(body.get("backend", "auto"))
        workers = body.get("workers")
        policy = self.admission.policy_for(tenant)
        with self.admission.admit(tenant):
            program, _digest, tier = await self._compile(source, options)
            start = time.perf_counter()
            if backend == "pmimd":
                result = await self._run_pmimd(
                    program, bindings, nproc, workers, policy
                )
            else:
                result = await self.pool.submit(
                    program.run,
                    bindings,
                    nproc=nproc,
                    backend=backend,
                    budget=policy.budget(),
                    policy=policy.policy(),
                )
            result.wall_seconds = time.perf_counter() - start
        self.metrics.ran(result.backend)
        return 200, encode_run_result(result, tier)

    async def _run_pmimd(self, program, bindings, nproc, workers, policy):
        """Run on the process-parallel backend via a reused executor."""
        if nproc < 1:
            raise ProtocolError("backend 'pmimd' needs nproc >= 1")
        config = BackendConfig(
            nproc=nproc,
            workers=workers,
            budget=policy.budget(),
        )
        executor, _reused = self.pool.pmimd_executor(program, config)
        res = await self.pool.submit(executor.run, bindings=bindings or None)
        steps = max((c.total_steps for c in res.counters), default=0)
        return RunResult(
            env=res.envs,
            counters=res.counters,
            backend="pmimd",
            nproc=nproc,
            cache_hit=program.cache_hit,
            steps=int(steps),
            statements=res.statements,
            events=res.events,
        )

    async def handle_lint(self, body: dict) -> tuple[int, dict]:
        source = require_source(body)
        options = compile_options(body)
        tenant = str(body.get("tenant", "default"))
        with self.admission.admit(tenant):
            program, digest, tier = await self._compile(source, options)
            report = await self.pool.submit(program.diagnostics)
        return 200, {
            "key": digest,
            "cache": tier,
            "summary": report.summary(),
            "diagnostics": report.to_dict().get("diagnostics", []),
        }

    def handle_healthz(self) -> tuple[int, dict]:
        body = {
            "ok": True,
            "uptime_seconds": time.monotonic() - self.metrics.started,
            "inflight": self.metrics.inflight,
        }
        if self.engine.store is not None:
            body["store"] = self.engine.store.stats()
        return 200, body

    def handle_metrics(self) -> tuple[int, dict]:
        body = self.metrics.snapshot()
        body["engine"] = self.engine.stats.snapshot()
        body["pool"] = self.pool.stats()
        body["admission"] = self.admission.snapshot()
        if self.engine.store is not None:
            body["store"] = self.engine.store.stats()
        return 200, body

    # -- routing ---------------------------------------------------------------

    async def dispatch(self, request: Request) -> tuple[int, dict]:
        """Route one request; every error becomes a JSON status."""
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                return self.handle_healthz()
            if route == ("GET", "/metrics"):
                return self.handle_metrics()
            if route == ("POST", "/v1/compile"):
                return await self.handle_compile(request.json())
            if route == ("POST", "/v1/run"):
                return await self.handle_run(request.json())
            if route == ("POST", "/v1/lint"):
                return await self.handle_lint(request.json())
        except AdmissionError as exc:
            self.metrics.rejected()
            return 429, error_body("AdmissionError", str(exc))
        except (ProtocolError, HTTPError) as exc:
            return 400, error_body(type(exc).__name__, str(exc))
        except MiniFError as exc:
            # Compile/runtime faults in the *client's program* — their
            # error, not ours.
            return 400, error_body(type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 — the service must answer
            return 500, error_body(type(exc).__name__, str(exc))
        known_paths = {"/healthz", "/metrics", "/v1/compile", "/v1/run", "/v1/lint"}
        if request.path in known_paths:
            return 405, error_body(
                "MethodNotAllowed", f"{request.method} {request.path}"
            )
        return 404, error_body("NotFound", request.path)

    # -- socket layer ----------------------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        endpoint = "?"
        start = time.perf_counter()
        try:
            try:
                request = await read_request(reader)
            except HTTPError as exc:
                self.metrics.request_started(endpoint)
                status, payload = exc.status, error_body("HTTPError", str(exc))
            else:
                if request is None:
                    return
                endpoint = request.path
                self.metrics.request_started(endpoint)
                status, payload = await self.dispatch(request)
            writer.write(response_bytes(status, payload))
            await writer.drain()
            self.metrics.request_finished(
                endpoint, status, time.perf_counter() - start
            )
        except (ConnectionError, asyncio.CancelledError):
            # client went away mid-exchange; nothing to answer
            self.metrics.request_finished(endpoint, 499, time.perf_counter() - start)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._client_connected, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful stop: close the listener, drain, stop the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + self.config.drain_seconds
        while self.metrics.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        self.pool.shutdown(wait=True)


async def serve(config: ServeConfig, *, ready=None, stop=None) -> None:
    """Boot the service and run until a stop signal.

    Args:
        config: Service settings.
        ready: Optional callback invoked with the :class:`ServeApp`
            once the listener is bound (the CLI prints the URL).
        stop: Optional ``asyncio.Event`` ending the service (tests);
            by default SIGINT/SIGTERM end it.
    """
    import signal

    app = ServeApp(config)
    await app.start()
    if ready is not None:
        ready(app)
    stop_event = stop if stop is not None else asyncio.Event()
    if stop is None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal handlers
    await stop_event.wait()
    await app.shutdown()


__all__ = ["ServeApp", "ServeConfig", "serve"]
