"""``repro serve`` — the async compile-and-run service.

The "millions of users" layer (ROADMAP item 2): a dependency-free
asyncio HTTP front end over the cached
:class:`~repro.runtime.Engine` and its persistent
:class:`~repro.runtime.store.ArtifactStore` tier, so cold compiles
happen once per cluster and everything else is a cache hit plus a
vectorized run.

Pieces:

* :mod:`repro.serve.http` — a handcrafted HTTP/1.1 layer on
  ``asyncio.start_server`` (no aiohttp, no http.server);
* :mod:`repro.serve.app` — the :class:`~repro.serve.app.ServeApp`
  request handlers and lifecycle (`POST /v1/compile`, `/v1/run`,
  `/v1/lint`, `GET /healthz`, `/metrics`);
* :mod:`repro.serve.singleflight` — deduplication of identical
  in-flight compiles;
* :mod:`repro.serve.admission` — per-tenant admission control wired
  to the reliability layer's :class:`~repro.reliability.Budget` and
  :class:`~repro.reliability.FallbackPolicy`;
* :mod:`repro.serve.pool` — the bounded worker-pool executor runs are
  dispatched to, with pmimd executor reuse across requests;
* :mod:`repro.serve.metrics` — JSON counters and latency percentiles
  behind ``/metrics``;
* :mod:`repro.serve.protocol` — request decoding and JSON-safe
  response encoding.
"""

from .admission import AdmissionController, AdmissionError, TenantPolicy
from .app import ServeApp, ServeConfig, serve
from .metrics import ServeMetrics
from .pool import RunnerPool
from .singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "RunnerPool",
    "ServeApp",
    "ServeConfig",
    "ServeMetrics",
    "SingleFlight",
    "TenantPolicy",
    "serve",
]
