"""Service counters and latency percentiles for ``/metrics``.

Everything is plain JSON-able integers/floats — no Prometheus client,
no external deps.  Latency percentiles come from a bounded ring of the
most recent samples per endpoint, which is exact for small services
and a fine (recency-weighted) estimate under load; p50/p95 are
computed on demand by sorting the ring, never on the hot path.

Thread-safety: handlers run on the event loop but compiles/runs
complete on worker threads, so every mutation takes one small lock.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque


class LatencyWindow:
    """Ring buffer of recent latency samples with percentile queries."""

    def __init__(self, size: int = 512):
        self.samples: deque[float] = deque(maxlen=size)

    def observe(self, seconds: float) -> None:
        self.samples.append(float(seconds))

    def percentile(self, fraction: float) -> float | None:
        """The ``fraction`` (0..1) percentile of the window, or None."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "count": len(self.samples),
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
        }


class ServeMetrics:
    """All service-level counters behind ``GET /metrics``.

    Cache hits are counted *by tier* — ``memory`` (in-process LRU),
    ``disk`` (persistent :class:`~repro.runtime.store.ArtifactStore`),
    ``miss`` (full compile) — plus ``inflight`` for requests that
    coalesced onto another request's compile via single-flight.
    """

    def __init__(self, window: int = 512):
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests: Counter = Counter()
        self.responses: Counter = Counter()  # by status code
        self.cache_tiers: Counter = Counter()
        self.runs_by_backend: Counter = Counter()
        self.singleflight_deduped = 0
        self.admission_rejected = 0
        self.inflight = 0
        self._latency: dict[str, LatencyWindow] = {}
        self._window = window

    # -- recording -------------------------------------------------------------

    def request_started(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] += 1
            self.inflight += 1

    def request_finished(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            self.responses[str(status)] += 1
            self.inflight = max(0, self.inflight - 1)
            window = self._latency.get(endpoint)
            if window is None:
                window = self._latency[endpoint] = LatencyWindow(self._window)
            window.observe(seconds)

    def cache_tier(self, tier: str) -> None:
        with self._lock:
            self.cache_tiers[tier] += 1

    def deduped(self) -> None:
        with self._lock:
            self.singleflight_deduped += 1

    def rejected(self) -> None:
        with self._lock:
            self.admission_rejected += 1

    def ran(self, backend: str) -> None:
        with self._lock:
            self.runs_by_backend[backend] += 1

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": time.monotonic() - self.started,
                "inflight": self.inflight,
                "requests": dict(self.requests),
                "responses": dict(self.responses),
                "cache_hits": dict(self.cache_tiers),
                "runs_by_backend": dict(self.runs_by_backend),
                "singleflight_deduped": self.singleflight_deduped,
                "admission_rejected": self.admission_rejected,
                "latency": {
                    endpoint: window.summary()
                    for endpoint, window in self._latency.items()
                },
            }


__all__ = ["LatencyWindow", "ServeMetrics"]
