"""Request decoding and JSON-safe response encoding for the service.

The wire format is deliberately dumb JSON:

* compile options travel as a flat object whitelisted onto
  :meth:`~repro.runtime.Engine.compile` keywords — unknown keys are a
  client error, not silently dropped;
* bindings are numbers or lists of numbers (lists become numpy
  arrays, matching the CLI's ``--bind`` convention);
* environments come back with every ``FArray`` flattened to a plain
  list and numpy scalars to Python numbers, so any HTTP client can
  consume a run result without knowing numpy exists.
"""

from __future__ import annotations

import numpy as np

from ..exec.values import FArray


class ProtocolError(Exception):
    """Malformed request body (maps to HTTP 400)."""


#: Body keys forwarded to ``Engine.compile`` verbatim.
COMPILE_OPTION_KEYS = (
    "transform",
    "variant",
    "simd",
    "assume_min_trips",
    "assume_parallel",
    "routine",
    "nest_index",
    "layout",
    "width",
    "strict",
)

#: Body keys that belong to the run shape, not the compile identity.
RUN_KEYS = ("bindings", "nproc", "backend", "workers", "routine_name")

#: Keys legal in a /v1/compile body.
_COMPILE_BODY_KEYS = frozenset(COMPILE_OPTION_KEYS) | {"source", "tenant"}

#: Keys legal in a /v1/run body.
_RUN_BODY_KEYS = _COMPILE_BODY_KEYS | frozenset(RUN_KEYS)


def require_source(body: dict) -> str:
    source = body.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("body needs a non-empty string field 'source'")
    return source


def compile_options(body: dict, *, run: bool = False) -> dict:
    """Extract the Engine.compile keywords from a request body.

    Unknown keys are rejected so a typo'd option (``"varient"``) fails
    loudly instead of silently compiling with defaults.
    """
    if not isinstance(body, dict):
        raise ProtocolError("body must be a JSON object")
    legal = _RUN_BODY_KEYS if run else _COMPILE_BODY_KEYS
    unknown = sorted(set(body) - legal)
    if unknown:
        raise ProtocolError(f"unknown field(s): {', '.join(unknown)}")
    return {key: body[key] for key in COMPILE_OPTION_KEYS if key in body}


def decode_bindings(raw) -> dict:
    """JSON bindings → interpreter bindings (lists become arrays)."""
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ProtocolError("'bindings' must be an object of name -> value")
    bindings = {}
    for name, value in raw.items():
        if isinstance(value, bool):
            raise ProtocolError(f"binding {name!r}: booleans are not values")
        if isinstance(value, (int, float)):
            bindings[str(name).lower()] = value
        elif isinstance(value, list):
            if not all(
                isinstance(item, (int, float)) and not isinstance(item, bool)
                for item in value
            ):
                raise ProtocolError(
                    f"binding {name!r}: list values must be numbers"
                )
            bindings[str(name).lower()] = np.array(value)
        else:
            raise ProtocolError(
                f"binding {name!r}: values are numbers or lists of numbers, "
                f"got {type(value).__name__}"
            )
    return bindings


def jsonable_value(value):
    """One environment value as plain JSON."""
    if isinstance(value, FArray):
        value = value.data
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def jsonable_env(env: dict) -> dict:
    """A visible environment (no ``__`` internals) as plain JSON."""
    return {
        name: jsonable_value(value)
        for name, value in env.items()
        if not (isinstance(name, str) and name.startswith("__"))
    }


def encode_run_result(result, cache_tier: str) -> dict:
    """A :class:`~repro.runtime.RunResult` as a JSON response body.

    MIMD-family results carry one environment and counter set per
    processor; the response keeps processor 0's environment (SPMD
    texts replicate the interesting state) plus the processor count.
    """
    env = result.env
    processors = None
    if isinstance(env, list):
        processors = len(env)
        env = env[0] if env else {}
    counters = result.counters
    if isinstance(counters, list):
        summary = {
            "total_steps": max((c.total_steps for c in counters), default=0),
        }
    else:
        summary = counters.summary()
        summary = {
            "total_steps": summary["total_steps"],
            "vector_instructions": summary["vector_instructions"],
            "mean_utilization": summary["mean_utilization"],
        }
    body = {
        "backend": result.backend,
        "nproc": result.nproc,
        "steps": result.steps,
        "wall_seconds": result.wall_seconds,
        "cache": cache_tier,
        "env": jsonable_env(env),
        "counters": summary,
        "attempts": len(result.attempts or []),
    }
    if processors is not None:
        body["processors"] = processors
    return body


def error_body(kind: str, message: str) -> dict:
    return {"error": {"type": kind, "message": message}}


__all__ = [
    "COMPILE_OPTION_KEYS",
    "RUN_KEYS",
    "ProtocolError",
    "compile_options",
    "decode_bindings",
    "encode_run_result",
    "error_body",
    "jsonable_env",
    "jsonable_value",
    "require_source",
]
