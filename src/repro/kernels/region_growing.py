"""Image region growing — the Willebeek-LeMair & Reeves workload.

The paper's introduction quotes their MPP case study: "the complexity
of each iteration in the SIMD environment is dominated by the largest
region in the image ... the synchronous execution of instructions
forces each processor to either perform the operation or wait in an
idle state."

This kernel models the per-region growth phase: every region grows by
one ring of pixels per step until it reaches its final extent, so the
inner trip count is the region's ring count — highly skewed for real
images.  The substrate synthesizes an image by seeded flood growth,
derives each region's ring sizes, and the MiniF nest accumulates ring
areas (a stand-in for per-ring feature updates).
"""

from __future__ import annotations

import numpy as np

from ..runtime.engine import default_engine
from ..lang import parse_source

#: Sequential region-growing statistics kernel: region r accretes
#: ring areas ring(r, s) over its rings(r) growth steps.
REGION_GROWING_SEQUENTIAL = """
C Region growing, sequential accumulation over growth rings
PROGRAM regiongrow
  INTEGER nregions, maxrings, r, s
  INTEGER rings(nregions), ring(nregions, maxrings)
  INTEGER area(nregions), grown(nregions)
  DO r = 1, nregions
    area(r) = 0
    grown(r) = 0
    DO s = 1, rings(r)
      area(r) = area(r) + ring(r, s)
      grown(r) = grown(r) + 1
    ENDDO
  ENDDO
END
"""


def synthesize_regions(
    width: int = 64,
    height: int = 64,
    n_regions: int = 12,
    seed: int = 11,
) -> tuple[np.ndarray, np.ndarray]:
    """Grow labeled regions from random seeds on a grid.

    Implements simultaneous breadth-first flood growth: each step,
    every region claims the unclaimed 4-neighbors of its frontier.
    Region sizes are highly unequal (Voronoi-like cells of random
    seeds), giving skewed ring counts.

    Returns:
        ``(rings, ring_sizes)`` where ``rings[r]`` is region ``r``'s
        growth-step count and ``ring_sizes[r, s]`` is the pixel count
        claimed at step ``s`` (zero-padded).
    """
    rng = np.random.default_rng(seed)
    labels = np.zeros((height, width), dtype=np.int64)
    seeds = set()
    while len(seeds) < n_regions:
        seeds.add((int(rng.integers(height)), int(rng.integers(width))))
    frontiers: list[list[tuple[int, int]]] = []
    for index, (y, x) in enumerate(sorted(seeds), start=1):
        labels[y, x] = index
        frontiers.append([(y, x)])
    ring_lists: list[list[int]] = [[1] for _ in range(n_regions)]

    claimed = int(n_regions)
    total = width * height
    while claimed < total:
        progressed = False
        for region in range(n_regions):
            frontier = frontiers[region]
            if not frontier:
                continue
            next_frontier: list[tuple[int, int]] = []
            for y, x in frontier:
                for dy, dx in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ny, nx = y + dy, x + dx
                    if 0 <= ny < height and 0 <= nx < width and labels[ny, nx] == 0:
                        labels[ny, nx] = region + 1
                        next_frontier.append((ny, nx))
            frontiers[region] = next_frontier
            if next_frontier:
                ring_lists[region].append(len(next_frontier))
                claimed += len(next_frontier)
                progressed = True
        if not progressed:
            break

    rings = np.array([len(rl) for rl in ring_lists], dtype=np.int64)
    width_max = int(rings.max())
    ring_sizes = np.zeros((n_regions, width_max), dtype=np.int64)
    for region, rl in enumerate(ring_lists):
        ring_sizes[region, : len(rl)] = rl
    return rings, ring_sizes


def run_sequential(rings: np.ndarray, ring_sizes: np.ndarray):
    """Run the sequential kernel; returns (areas, counters)."""
    source = parse_source(REGION_GROWING_SEQUENTIAL)
    env, counters = default_engine().compile(source).run(
        backend="scalar",
        bindings={
            "nregions": int(rings.size),
            "maxrings": int(ring_sizes.shape[1]),
            "rings": rings.astype(np.int64),
            "ring": ring_sizes.astype(np.int64),
        },
    )
    return np.asarray(env["area"].data), counters


def parse_kernel():
    """The sequential kernel AST (input to the transformation pipeline)."""
    return parse_source(REGION_GROWING_SEQUENTIAL)
