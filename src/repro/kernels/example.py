"""The paper's running EXAMPLE (Section 3) in all its versions.

P1–P5 follow Figures 1–7; the module also provides the standard data
(K = 8, L = [4,1,2,1,1,3,1,3], P = 2) and ready-made loaders.  The
transformation pipeline can *derive* P4 and P5 from P1 — tested in
``tests/integration`` — but the verbatim texts are kept here so each
figure is runnable exactly as printed.
"""

from __future__ import annotations

import numpy as np

from ..lang import ast, parse_source

#: The paper's workload: K = 8 outer iterations with these inner trip counts.
EXAMPLE_K = 8
EXAMPLE_L = (4, 1, 2, 1, 1, 3, 1, 3)
EXAMPLE_P = 2

#: P1 (Figure 1): the original sequential loop nest.
P1_SEQUENTIAL = """
C P1 - sequential version (Figure 1)
PROGRAM example
  INTEGER i, j, k, l(8), x(8, 4)
  k = 8
  DO i = 1, k
    DO j = 1, l(i)
      x(i, j) = i * j
    ENDDO
  ENDDO
END
"""

#: P2 (Figure 2): the Fortran D version with data mapping directives.
P2_FORTRAN_D = """
C P2 - Fortran D version (Figure 2)
PROGRAM example
  PARAMETER (k = 8, lmax = 4)
  INTEGER i, j, l(k), x(k, lmax)
  DECOMPOSITION xd(k, lmax), ld(k)
  ALIGN x WITH xd
  ALIGN l WITH ld
  DISTRIBUTE xd(BLOCK, *)
  DISTRIBUTE ld(BLOCK)
  DO i = 1, k
    DO j = 1, l(i)
      x(i, j) = i * j
    ENDDO
  ENDDO
END
"""

#: P3 (Figure 3): the per-processor MIMD text.  ``lloc``/``xloc`` are
#: the renamed local arrays; ``myproc`` is bound by the simulator.
P3_MIMD = """
C P3 - MIMD version (Figure 3)
PROGRAM example
  INTEGER i, j, lloc(4), xloc(4, 4)
  DO i = 1, 4
    DO j = 1, lloc(i)
      xloc(i, j) = (i + 4 * (myproc - 1)) * j
    ENDDO
  ENDDO
END
"""

#: P4 (Figure 5): the naive SIMD version — inner bound max'ed across
#: the PEs, body under a WHERE.  ``iprime`` is the paper's i'.
P4_NAIVE_SIMD = """
C P4 - naive SIMD version (Figure 5)
PROGRAM example
  INTEGER i, j, iprime(2), l(8), x(8, 4)
  DO i = 1, 4
    iprime = i + [0, 4]
    DO j = 1, MAX(l(iprime))
      WHERE (j <= l(iprime))
        x(iprime, j) = iprime * j
      ENDWHERE
    ENDDO
  ENDDO
END
"""

#: P5 (Figure 7): the flattened SIMD version.
P5_FLATTENED_SIMD = """
C P5 - flattened SIMD version (Figure 7)
PROGRAM example
  INTEGER i(2), k(2), j(2), l(8), x(8, 4)
  i = [1, 5]
  k = [4, 8]
  j = 1
  WHILE (ANY(i <= k))
    WHERE (i <= k)
      x(i, j) = i * j
      WHERE (j == l(i))
        i = i + 1
        j = 1
      ELSEWHERE
        j = j + 1
      ENDWHERE
    ENDWHERE
  ENDWHILE
END
"""

#: The EXAMPLE as a GOTO "dusty deck" — exercises structurization.
P1_GOTO = """
C P1 as an F77 GOTO loop nest
PROGRAM example
  INTEGER i, j, k, l(8), x(8, 4)
  k = 8
  i = 1
10 IF (i > k) GOTO 40
  j = 1
20 IF (j > l(i)) GOTO 30
  x(i, j) = i * j
  j = j + 1
  GOTO 20
30 CONTINUE
  i = i + 1
  GOTO 10
40 CONTINUE
END
"""


def example_bindings() -> dict:
    """Initial environment: the paper's L array."""
    return {"l": np.array(EXAMPLE_L, dtype=np.int64)}


def mimd_bindings(proc: int) -> dict:
    """Processor ``proc``'s local slice for P3 (block distribution)."""
    full = np.array(EXAMPLE_L, dtype=np.int64)
    chunk = EXAMPLE_K // EXAMPLE_P
    lo = (proc - 1) * chunk
    return {"lloc": full[lo : lo + chunk]}


def expected_x() -> np.ndarray:
    """Ground-truth X for the standard workload (zeros where unset)."""
    out = np.zeros((EXAMPLE_K, max(EXAMPLE_L)), dtype=np.int64)
    for i, trips in enumerate(EXAMPLE_L, start=1):
        for j in range(1, trips + 1):
            out[i - 1, j - 1] = i * j
    return out


def parse_example(text: str) -> ast.SourceFile:
    """Parse one of the EXAMPLE program texts."""
    return parse_source(text)


def is_body_statement(stmt: ast.Stmt) -> bool:
    """Predicate selecting BODY (the assignment to X) for tracing."""
    return (
        isinstance(stmt, ast.Assign)
        and isinstance(stmt.target, ast.ArrayRef)
        and stmt.target.name in ("x", "xloc")
    )
