"""The NBFORCE kernels of the case study (Section 5).

Four versions of the non-bonded force calculation:

* :data:`NBFORCE_SEQUENTIAL` — Figure 13, the F77 original (this is
  also what runs on the Sparc reference and what the transformation
  pipeline flattens automatically);
* :data:`NBFORCE_UNFLAT_SELECT` — the L_u^l version (Figure 17 with
  explicit ``1:Lrs`` layer selection);
* :data:`NBFORCE_UNFLAT_ALL` — the L_u^2 version (all ``maxLrs``
  layers, plain ``:`` subscripts);
* :data:`NBFORCE_FLAT` — the L_f flattened version (Figures 15/16).

The force routine is external (``CALL force(fpair, at1, at2)``); the
molecular substrate provides it (:mod:`repro.md.forces`).  Runner
helpers wire kernels, bindings, externals, and counters together.
"""

from __future__ import annotations

import numpy as np

from ..exec.values import FArray
from ..lang import parse_source
from ..runtime.engine import Engine, default_engine
from ..md.distribution import (
    flat_kernel_bindings,
    gather_flat_results,
    gather_unflat_results,
    unflat_kernel_bindings,
)
from ..md.forces import make_scalar_force_external, make_simd_force_external
from ..md.molecule import Molecule
from ..md.pairlist import PairList
from ..simd.layout import DataDistribution

#: Figure 13: the sequential F77 kernel (owner-computes F, half pairs).
NBFORCE_SEQUENTIAL = """
C NBFORCE - sequential version (Figure 13)
PROGRAM nbforce
  INTEGER n, maxpcnt, at1, at2, prc
  INTEGER pcnt(n), partners(n, maxpcnt)
  REAL f(n), fpair
  DO at1 = 1, n
    f(at1) = 0.0
    DO prc = 1, pcnt(at1)
      at2 = partners(at1, prc)
      CALL force(fpair, at1, at2)
      f(at1) = f(at1) + fpair
    ENDDO
  ENDDO
END
"""

#: The MIMD (M_seq) version: the Figure-13 sequential kernel with the
#: atom range block-partitioned over asynchronous processors.  Each
#: processor binds its own ``pcnt``/``partners`` slice and ``atom0``
#: rebases the local loop index to the global atom id the force
#: external expects — no lockstep, no masking, each processor's DO
#: loops run exactly its own trip counts.
NBFORCE_MIMD = """
C NBFORCE - MIMD version (sequential kernel per processor)
PROGRAM nbforce
  INTEGER n, atom0, maxpcnt, at1, at1g, at2, prc
  INTEGER pcnt(n), partners(n, maxpcnt)
  REAL f(n), fpair
  DO at1 = 1, n
    f(at1) = 0.0
    at1g = at1 + atom0
    DO prc = 1, pcnt(at1)
      at2 = partners(at1, prc)
      CALL force(fpair, at1g, at2)
      f(at1) = f(at1) + fpair
    ENDDO
  ENDDO
END
"""

#: The L_u^l unflattened version: explicit 1:Lrs layer selection
#: (Figure 17 with the paper's "selecting memory layers" subscripts).
NBFORCE_UNFLAT_SELECT = """
C NBFORCE - unflattened, selecting memory layers (L_u^l)
PROGRAM nbforce
  INTEGER p, lrs, maxlrs, maxpcnt, pr
  INTEGER at1(p, maxlrs), at2(p, maxlrs)
  INTEGER pcnt(p, maxlrs), partners(p, maxlrs, maxpcnt)
  REAL f(p, maxlrs), fpair(p, maxlrs)
  f = 0.0
  DO pr = 1, maxpcnt
    at2(:, 1:lrs) = partners(:, 1:lrs, pr)
    CALL force(fpair(:, 1:lrs), at1(:, 1:lrs), at2(:, 1:lrs))
    WHERE (pcnt(:, 1:lrs) >= pr)
      f(:, 1:lrs) = f(:, 1:lrs) + fpair(:, 1:lrs)
    ENDWHERE
  ENDDO
END
"""

#: The L_u^2 unflattened version: all memory layers, plain ':'.
NBFORCE_UNFLAT_ALL = """
C NBFORCE - unflattened, using all memory layers (L_u^2)
PROGRAM nbforce
  INTEGER p, lrs, maxlrs, maxpcnt, pr
  INTEGER at1(p, maxlrs), at2(p, maxlrs)
  INTEGER pcnt(p, maxlrs), partners(p, maxlrs, maxpcnt)
  REAL f(p, maxlrs), fpair(p, maxlrs)
  f = 0.0
  DO pr = 1, maxpcnt
    at2 = partners(:, :, pr)
    CALL force(fpair, at1, at2)
    WHERE (pcnt >= pr)
      f = f + fpair
    ENDWHERE
  ENDDO
END
"""

#: The L_f flattened version (Figure 15 / Figure 16; cyclic layout,
#: takes pCnt(i) >= 1 into account).
NBFORCE_FLAT = """
C NBFORCE - flattened version (L_f, Figures 15/16)
PROGRAM nbforce
  INTEGER n, p, maxpcnt
  INTEGER pcnt(n), partners(n, maxpcnt)
  INTEGER at1(p), at2(p), pr(p)
  REAL f(n), fpair(p)
  f = 0.0
  at1 = [1 : p]
  pr = 1
  WHILE (ANY(at1 <= n))
    WHERE (at1 <= n)
      at2 = partners(at1, pr)
      CALL force(fpair, at1, at2)
      f(at1) = f(at1) + fpair
      WHERE (pr == pcnt(at1))
        at1 = at1 + p
        pr = 1
      ELSEWHERE
        pr = pr + 1
      ENDWHERE
    ENDWHERE
  ENDWHILE
END
"""


def flat_kernel_setup(
    molecule: Molecule, pairlist: PairList, dist: DataDistribution
) -> tuple:
    """Workload preparation for the flattened kernel: ``(text,
    bindings, externals)``.

    The pairlist arrays are adopted as :class:`FArray` wrappers —
    the kernel only reads them, and adoption skips the defensive
    per-run copy at DECL.  Benchmark runners call this *outside* the
    timed region: it is input marshalling, not engine execution.
    """
    bindings = flat_kernel_bindings(pairlist, dist)
    for name in ("pcnt", "partners"):
        bindings[name] = FArray.wrap(name, bindings[name])
    return NBFORCE_FLAT, bindings, {"force": make_simd_force_external(molecule)}


def unflat_kernel_setup(
    molecule: Molecule,
    pairlist: PairList,
    dist: DataDistribution,
    select_layers: bool,
) -> tuple:
    """Workload preparation for an unflattened kernel: ``(text,
    bindings, externals)`` — see :func:`flat_kernel_setup`."""
    text = NBFORCE_UNFLAT_SELECT if select_layers else NBFORCE_UNFLAT_ALL
    bindings = unflat_kernel_bindings(pairlist, dist)
    for name in ("at1", "pcnt", "partners"):
        bindings[name] = FArray.wrap(name, bindings[name])
    return text, bindings, {"force": make_simd_force_external(molecule)}


def run_flat_kernel(
    molecule: Molecule,
    pairlist: PairList,
    dist: DataDistribution,
    engine: Engine | None = None,
    backend: str = "interpreter",
):
    """Run the flattened NBFORCE kernel on a ``dist.gran``-slot machine.

    The kernel text compiles once per Engine; sweeps over cutoffs and
    machine widths reuse the cached artifact.  ``backend`` selects the
    lockstep engine (``"interpreter"`` or ``"vm"``); both produce
    identical results and counters.

    Returns:
        ``(per_atom_f, counters)``.
    """
    engine = engine if engine is not None else default_engine()
    text, bindings, externals = flat_kernel_setup(molecule, pairlist, dist)
    result = engine.compile(text).run(
        bindings, nproc=dist.gran, backend=backend, externals=externals
    )
    return gather_flat_results(result.env, pairlist), result.counters


def run_unflat_kernel(
    molecule: Molecule,
    pairlist: PairList,
    dist: DataDistribution,
    select_layers: bool,
    engine: Engine | None = None,
    backend: str = "interpreter",
):
    """Run an unflattened NBFORCE kernel (L_u^l or L_u^2).

    Args:
        select_layers: True for the explicit ``1:Lrs`` version (L_u^l).
        backend: Lockstep engine (``"interpreter"`` or ``"vm"``).

    Returns:
        ``(per_atom_f, counters)``.
    """
    engine = engine if engine is not None else default_engine()
    text, bindings, externals = unflat_kernel_setup(
        molecule, pairlist, dist, select_layers
    )
    result = engine.compile(text).run(
        bindings, nproc=dist.gran, backend=backend, externals=externals
    )
    return gather_unflat_results(result.env, pairlist, dist), result.counters


def mimd_kernel_setup(
    molecule: Molecule, pairlist: PairList, nproc: int
) -> tuple:
    """Workload preparation for the MIMD column: ``(text,
    bindings_for, externals)``.

    The atom range is block-partitioned over ``nproc`` asynchronous
    processors; processor ``p``'s bindings carry its own
    ``pcnt``/``partners`` slice plus the ``atom0`` rebase, so each
    processor runs the sequential Figure-13 loop over exactly its own
    pairs — the control-flow-free execution model the paper's
    MIMD-vs-SIMD comparison is about.  Like the SIMD setups this is
    input marshalling and belongs outside the timed region.
    """
    if nproc < 1:
        raise ValueError(f"mimd_kernel_setup needs nproc >= 1, got {nproc}")
    pcnt = pairlist.pcnt.astype(np.int64)
    partners = pairlist.partners.astype(np.int64)
    maxpcnt = int(partners.shape[1])
    n = pairlist.n_atoms
    base, extra = divmod(n, nproc)

    def bindings_for(proc: int) -> dict:
        # Processors are 1-based (MIMDSimulator / pmimd convention).
        index = proc - 1
        lo = index * base + min(index, extra)
        size = base + (1 if index < extra else 0)
        hi = lo + size
        return {
            "n": size,
            "atom0": lo,
            "maxpcnt": maxpcnt,
            "pcnt": pcnt[lo:hi].copy(),
            "partners": partners[lo:hi].copy(),
        }

    return (
        NBFORCE_MIMD,
        bindings_for,
        {"force": make_scalar_force_external(molecule)},
    )


def run_sequential_kernel(
    molecule: Molecule, pairlist: PairList, engine: Engine | None = None
):
    """Run the sequential NBFORCE (the Sparc reference path).

    Returns:
        ``(per_atom_f, counters)``.
    """
    engine = engine if engine is not None else default_engine()
    bindings = {
        "n": pairlist.n_atoms,
        "maxpcnt": int(pairlist.partners.shape[1]),
        "pcnt": pairlist.pcnt.astype(np.int64),
        "partners": pairlist.partners.astype(np.int64),
    }
    result = engine.compile(NBFORCE_SEQUENTIAL).run(
        bindings,
        backend="scalar",
        externals={"force": make_scalar_force_external(molecule)},
    )
    return np.asarray(result.env["f"].data, dtype=float), result.counters
