"""Workload kernels: the paper's EXAMPLE and NBFORCE programs plus the
related irregular workloads (Mandelbrot, region growing, sparse MV)."""

from . import example, mandelbrot, nbforce, region_growing, spmv

__all__ = ["example", "nbforce", "mandelbrot", "region_growing", "spmv"]
