"""CSR sparse matrix–vector product — an irregular loop-nest workload.

The row loop is parallel, the inner loop runs over each row's
nonzeros — trip counts follow the row-length distribution, so a naive
SIMD sweep pays for the densest row on every row batch.  SpMV also
brings *indirect addressing on the read side* (``x(col(k))``), which
the dependence test must classify as harmless (reads never block
parallelization of the row loop).
"""

from __future__ import annotations

import numpy as np

from ..runtime.engine import default_engine
from ..lang import parse_source

#: Sequential CSR SpMV: y(i) = Σ_k a(k) * x(col(k)) over row i's range.
SPMV_SEQUENTIAL = """
C CSR sparse matrix-vector product, sequential
PROGRAM spmv
  INTEGER nrows, nnz, i, k
  INTEGER rowptr(nrows), rowlen(nrows), col(nnz)
  REAL a(nnz), x(nrows), y(nrows)
  DO i = 1, nrows
    y(i) = 0.0
    DO k = 1, rowlen(i)
      y(i) = y(i) + a(rowptr(i) + k - 1) * x(col(rowptr(i) + k - 1))
    ENDDO
  ENDDO
END
"""


def random_csr(
    nrows: int = 64,
    skew: float = 2.0,
    density: float = 0.1,
    seed: int = 5,
):
    """A random CSR matrix with a power-law-ish row-length skew.

    Returns:
        ``(rowptr, rowlen, col, a, x)`` with 1-based rowptr/col,
        mirroring the kernel's expectations.
    """
    rng = np.random.default_rng(seed)
    base = max(1, int(density * nrows))
    lengths = np.minimum(
        nrows, np.maximum(1, (base * rng.pareto(skew, nrows) + 1).astype(np.int64))
    )
    rowptr = np.ones(nrows, dtype=np.int64)
    rowptr[1:] = 1 + np.cumsum(lengths[:-1])
    nnz = int(lengths.sum())
    col = np.empty(nnz, dtype=np.int64)
    cursor = 0
    for length in lengths:
        col[cursor : cursor + length] = (
            rng.choice(nrows, size=length, replace=False) + 1
        )
        cursor += length
    a = rng.normal(size=nnz)
    x = rng.normal(size=nrows)
    return rowptr, lengths, col, a, x


def reference_spmv(rowptr, rowlen, col, a, x) -> np.ndarray:
    """Pure-numpy reference y = A x."""
    y = np.zeros(len(rowlen))
    for i in range(len(rowlen)):
        start = rowptr[i] - 1
        stop = start + rowlen[i]
        y[i] = np.dot(a[start:stop], x[col[start:stop] - 1])
    return y


def run_sequential(rowptr, rowlen, col, a, x):
    """Run the sequential kernel; returns (y, counters)."""
    source = parse_source(SPMV_SEQUENTIAL)
    env, counters = default_engine().compile(source).run(
        backend="scalar",
        bindings={
            "nrows": int(len(rowlen)),
            "nnz": int(len(a)),
            "rowptr": np.asarray(rowptr, dtype=np.int64),
            "rowlen": np.asarray(rowlen, dtype=np.int64),
            "col": np.asarray(col, dtype=np.int64),
            "a": np.asarray(a, dtype=float),
            "x": np.asarray(x, dtype=float),
        },
    )
    return np.asarray(env["y"].data, dtype=float), counters


def parse_kernel():
    """The sequential kernel AST (input to the transformation pipeline)."""
    return parse_source(SPMV_SEQUENTIAL)
