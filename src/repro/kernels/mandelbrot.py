"""Mandelbrot escape iteration — the Tomboulian & Pappas workload.

The paper's Section 7 cites indirect addressing for the Mandelbrot set
as a special case of loop flattening: each pixel's escape iteration
count varies wildly, so a naive SIMD sweep runs every pixel to the
*maximum* iteration count of its batch.  Flattening the (pixel,
iteration) nest lets each PE move on to its next pixel as soon as the
current one escapes.

The kernel is a two-level nest with a WHILE inner loop (variable trip
count) — a different loop species from NBFORCE's counted inner DO,
which is exactly why it earns a place in the test matrix.
"""

from __future__ import annotations

import numpy as np

from ..exec import SIMDInterpreter
from ..runtime.engine import default_engine
from ..lang import parse_source

#: Sequential Mandelbrot kernel: for each point, iterate z = z² + c
#: until |z|² > 4 or the iteration budget is spent; record the count.
MANDELBROT_SEQUENTIAL = """
C Mandelbrot escape iterations, sequential
PROGRAM mandel
  INTEGER npix, maxiter, i, it
  REAL cr(npix), ci(npix), zr, zi, tr
  INTEGER counts(npix)
  DO i = 1, npix
    zr = 0.0
    zi = 0.0
    it = 0
    DO WHILE ((zr * zr + zi * zi <= 4.0) .AND. (it < maxiter))
      tr = zr * zr - zi * zi + cr(i)
      zi = 2.0 * zr * zi + ci(i)
      zr = tr
      it = it + 1
    ENDDO
    counts(i) = it
  ENDDO
END
"""

#: Hand-flattened SIMD version (the shape flatten_spmd derives).
MANDELBROT_FLAT_SIMD = """
C Mandelbrot escape iterations, flattened SIMD (cyclic over pixels)
PROGRAM mandel
  INTEGER npix, maxiter, p
  INTEGER i(p), it(p), counts(npix)
  REAL cr(npix), ci(npix), zr(p), zi(p), tr(p)
  i = [1 : p]
  zr = 0.0
  zi = 0.0
  it = 0
  WHILE (ANY(i <= npix))
    WHERE (i <= npix)
      WHERE ((zr * zr + zi * zi <= 4.0) .AND. (it < maxiter))
        tr = zr * zr - zi * zi + cr(i)
        zi = 2.0 * zr * zi + ci(i)
        zr = tr
        it = it + 1
      ELSEWHERE
        counts(i) = it
        i = i + p
        zr = 0.0
        zi = 0.0
        it = 0
      ENDWHERE
    ENDWHERE
  ENDWHILE
END
"""


def mandelbrot_grid(
    width: int = 32,
    height: int = 32,
    re_range: tuple[float, float] = (-2.0, 0.6),
    im_range: tuple[float, float] = (-1.2, 1.2),
) -> tuple[np.ndarray, np.ndarray]:
    """Flattened (cr, ci) coordinate arrays of a view rectangle."""
    re = np.linspace(re_range[0], re_range[1], width)
    im = np.linspace(im_range[0], im_range[1], height)
    grid_re, grid_im = np.meshgrid(re, im)
    return grid_re.ravel(), grid_im.ravel()


def escape_counts_reference(
    cr: np.ndarray, ci: np.ndarray, maxiter: int
) -> np.ndarray:
    """Pure-numpy reference escape counts."""
    zr = np.zeros_like(cr)
    zi = np.zeros_like(ci)
    counts = np.zeros(cr.shape, dtype=np.int64)
    alive = np.ones(cr.shape, dtype=bool)
    for _ in range(maxiter):
        tr = zr * zr - zi * zi + cr
        zi = np.where(alive, 2.0 * zr * zi + ci, zi)
        zr = np.where(alive, tr, zr)
        counts = counts + alive
        alive = alive & (zr * zr + zi * zi <= 4.0)
        if not alive.any():
            break
    return counts


def run_sequential(cr: np.ndarray, ci: np.ndarray, maxiter: int):
    """Run the sequential kernel; returns (counts, counters)."""
    source = parse_source(MANDELBROT_SEQUENTIAL)
    env, counters = default_engine().compile(source).run(
        backend="scalar",
        bindings={
            "npix": int(cr.size),
            "maxiter": int(maxiter),
            "cr": np.asarray(cr, dtype=float),
            "ci": np.asarray(ci, dtype=float),
        },
    )
    return np.asarray(env["counts"].data), counters


def run_flat_simd(cr: np.ndarray, ci: np.ndarray, maxiter: int, nproc: int):
    """Run the flattened SIMD kernel; returns (counts, counters)."""
    source = parse_source(MANDELBROT_FLAT_SIMD)
    interp = SIMDInterpreter(source, nproc)
    env = interp.run(
        bindings={
            "npix": int(cr.size),
            "maxiter": int(maxiter),
            "p": nproc,
            "cr": np.asarray(cr, dtype=float),
            "ci": np.asarray(ci, dtype=float),
        }
    )
    return np.asarray(env["counts"].data), interp.counters
