"""Failure corpus: persist, list and replay fuzz findings.

Each failure is one JSON file (``fuzz-<seed>-<index>.json``) carrying
everything needed to reproduce it offline: the campaign coordinates,
the full program text and bindings, the divergence (kind, leg,
detail), the shrunk reproducer when the reducer ran, and the
:mod:`repro.reliability` crash dump when the leg faulted.  Replaying
an entry re-runs the differential oracle on the stored program and
reports whether the same leg still diverges — corpus files double as
regression tests once a bug is fixed.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .generator import GeneratedProgram
from .oracle import DifferentialOracle, Divergence

SCHEMA = "repro-fuzz-corpus/1"


@dataclass
class CorpusEntry:
    """One persisted failure."""

    seed: int
    index: int
    program: GeneratedProgram
    divergence: Divergence
    shrunk: GeneratedProgram | None = None
    schema: str = SCHEMA

    @property
    def name(self) -> str:
        return f"fuzz-{self.seed}-{self.index}"


def _bindings_to_json(bindings: dict) -> dict:
    return {
        name: value.tolist() if isinstance(value, np.ndarray) else int(value)
        for name, value in bindings.items()
    }


def _bindings_from_json(data: dict) -> dict:
    return {
        name: np.array(value, dtype=np.int64)
        if isinstance(value, list)
        else int(value)
        for name, value in data.items()
    }


def _program_to_json(prog: GeneratedProgram) -> dict:
    return {
        "source": prog.source,
        "bindings": _bindings_to_json(prog.bindings),
        "features": list(prog.features),
        "trip_counts": list(prog.trip_counts),
        "outer_trips": prog.outer_trips,
        "min_trips_ok": prog.min_trips_ok,
        "partitionable": prog.partitionable,
    }


def _program_from_json(data: dict, seed: int, index: int) -> GeneratedProgram:
    return GeneratedProgram(
        seed=seed,
        index=index,
        source=data["source"],
        bindings=_bindings_from_json(data["bindings"]),
        features=tuple(data["features"]),
        trip_counts=tuple(data["trip_counts"]),
        outer_trips=data["outer_trips"],
        min_trips_ok=data["min_trips_ok"],
        partitionable=data["partitionable"],
    )


def save_entry(corpus_dir: str | Path, entry: CorpusEntry) -> Path:
    """Write one failure to ``corpus_dir``; returns the file path."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": entry.schema,
        "seed": entry.seed,
        "index": entry.index,
        "divergence": {
            "kind": entry.divergence.kind,
            "config": entry.divergence.config,
            "detail": entry.divergence.detail,
            "crash_dump": entry.divergence.crash_dump,
        },
        "program": _program_to_json(entry.program),
    }
    if entry.shrunk is not None:
        payload["shrunk"] = _program_to_json(entry.shrunk)
    path = directory / f"{entry.name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def load_entry(path: str | Path) -> CorpusEntry:
    """Read one failure back from disk."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown corpus schema {data.get('schema')!r}"
        )
    seed, index = int(data["seed"]), int(data["index"])
    div = data["divergence"]
    entry = CorpusEntry(
        seed=seed,
        index=index,
        program=_program_from_json(data["program"], seed, index),
        divergence=Divergence(
            kind=div["kind"],
            config=div["config"],
            detail=div["detail"],
            crash_dump=div.get("crash_dump"),
        ),
    )
    if "shrunk" in data:
        entry.shrunk = _program_from_json(data["shrunk"], seed, index)
    return entry


def iter_corpus(corpus_dir: str | Path):
    """Yield every :class:`CorpusEntry` under ``corpus_dir``, sorted."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("fuzz-*.json")):
        yield load_entry(path)


def replay_entry(
    entry: CorpusEntry,
    nproc: int = 4,
    oracle: DifferentialOracle | None = None,
) -> Divergence | None:
    """Re-run the oracle on a stored failure (shrunk form if present).

    Returns the divergence observed on the originally-failing leg, or
    None when the bug no longer reproduces.
    """
    if oracle is None:
        oracle = DifferentialOracle(nproc=nproc)
    program = entry.shrunk if entry.shrunk is not None else entry.program
    return oracle.check_leg(program, entry.divergence.config)
