"""Seeded, deterministic generator of random loop nests.

Every program is a well-formed MiniF main program built around one
two-level (sometimes three-level) loop nest — the shape the paper's
transformation applies to — with concrete input bindings and
ground-truth metadata computed at generation time:

* the actual per-outer-iteration inner trip counts (so the oracle
  knows when ``assume_min_trips`` is a *true* assertion and when a
  divergence under a violated assumption is the caller's fault, not a
  transform bug);
* whether the program is partitionable across PEs without write
  conflicts (scalar accumulators and ``y(j)``-style stores serialize
  the outer loop);
* the predicted total useful iterations (for the work-conservation
  invariant).

Generation is reproducible: program ``index`` under ``seed`` is a pure
function of ``(seed, index)`` — no global RNG state is consulted, so
test order (or ``pytest-randomly``) cannot change what is generated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

#: Inner-trip-shape feature names (one per program).
TRIP_SHAPES = (
    "array",        # DO j = 1, l(i)
    "triangular",   # DO j = 1, i
    "triangular2",  # DO j = i, k
    "indirect",     # DO j = 1, l(idx(i))
    "literal",      # DO j = 1, C
    "clamped",      # DO j = 1, min(l(i), 2)
    "shifted",      # DO j = 1, l(i) - 1  (can be negative -> 0 trips)
)


@dataclass(frozen=True)
class GenConfig:
    """Knobs for the program generator.

    Attributes:
        max_outer: Largest outer trip count drawn.
        max_trip: Largest per-iteration inner trip count drawn.
        guard_prob: Probability of guarding a body store with an IF.
        deep_prob: Probability of a third (literal-bound) loop level.
        acc_prob: Probability of planting a scalar accumulator
            (``s = s + ...`` — serializes the outer loop).
        ywrite_prob: Probability of a ``y(j)`` store (an outer-loop
            output dependence — also serializes).
        pre_prob / post_prob: Probability of imperfect-nest statements
            before/after the inner loop.
    """

    max_outer: int = 7
    max_trip: int = 4
    guard_prob: float = 0.35
    deep_prob: float = 0.15
    acc_prob: float = 0.30
    ywrite_prob: float = 0.20
    pre_prob: float = 0.30
    post_prob: float = 0.30


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated test program with its ground truth.

    Attributes:
        seed: Campaign seed.
        index: Program number within the campaign.
        source: MiniF text of the program.
        bindings: Initial environment (``k``, ``l``, ``idx``).
        features: Shape/feature tags drawn for this program.
        trip_counts: Actual inner trips of each executed outer
            iteration (empty when the outer loop runs zero times).
        outer_trips: Actual outer trip count.
        min_trips_ok: True when asserting paper condition 2
            (``assume_min_trips``) is consistent with the data.
        partitionable: No cross-iteration write conflicts — the
            generator's ground truth for outer-loop parallelism.
        outputs: Array names whose final contents are observable.
        observables: Scalar names whose final values are observable.
    """

    seed: int
    index: int
    source: str
    bindings: dict
    features: tuple[str, ...]
    trip_counts: tuple[int, ...]
    outer_trips: int
    min_trips_ok: bool
    partitionable: bool
    outputs: tuple[str, ...] = ("x", "y", "w", "z")
    observables: tuple[str, ...] = ("s", "k")

    @property
    def total_work(self) -> int:
        """Predicted total useful inner iterations (Eq. 1 numerator)."""
        return int(sum(self.trip_counts))

    def line_count(self) -> int:
        return len(self.source.splitlines())


def _int_expr(rng: random.Random, vars_: tuple[str, ...]) -> str:
    """A small integer expression over the given variables."""
    leaves = list(vars_) + [str(rng.randint(1, 9))]
    kind = rng.randrange(4)
    if kind == 0:
        return rng.choice(leaves)
    a, b = rng.choice(leaves), rng.choice(leaves)
    op = rng.choice(["+", "-", "*"])
    if kind == 1:
        return f"{a} {op} {b}"
    if kind == 2:
        return f"mod({a} + {b}, {rng.randint(2, 5)}) + {rng.choice(leaves)}"
    c = rng.choice(leaves)
    return f"{a} {op} {b} + {c}"


def _cond_expr(rng: random.Random) -> str:
    return rng.choice(
        [
            "mod(i + j, 2) == 0",
            "mod(j, 2) == 1",
            "j < l(i)",
            "i <= j",
            "x(i, j) == 0",
        ]
    )


class ProgramGenerator:
    """Deterministic stream of :class:`GeneratedProgram`.

    Args:
        seed: Campaign seed; ``generate(i)`` depends only on
            ``(seed, i)`` and the config.
        config: Generator knobs.
    """

    def __init__(self, seed: int = 0, config: GenConfig | None = None):
        self.seed = int(seed)
        self.config = config or GenConfig()

    def programs(self, count: int, start: int = 0):
        """Yield ``count`` programs starting at ``start``."""
        for index in range(start, start + count):
            yield self.generate(index)

    def generate(self, index: int) -> GeneratedProgram:
        """Build program ``index`` of this campaign (pure function)."""
        cfg = self.config
        rng = random.Random(f"repro-fuzz/{self.seed}/{index}")
        features: list[str] = []

        # --- outer extent and inner-bound data ---------------------------
        k = rng.choice([0, 1, 1, 2, 3, 3, 5, cfg.max_outer])
        if k == 0:
            features.append("outer-zero")
        elif k == 1:
            features.append("outer-one")
        kext = max(k, 1)
        all_positive = rng.random() < 0.4
        lo_trip = 1 if all_positive else 0
        l_values = [rng.randint(lo_trip, cfg.max_trip) for _ in range(kext)]
        idx_values = list(range(1, kext + 1))
        rng.shuffle(idx_values)

        shape = rng.choice(TRIP_SHAPES)
        features.append(f"shape-{shape}")
        if shape == "array":
            hi, trips = "l(i)", [l_values[i - 1] for i in range(1, k + 1)]
        elif shape == "triangular":
            hi, trips = "i", list(range(1, k + 1))
        elif shape == "triangular2":
            # DO j = i, k  ->  rewrite as trips = k - i + 1 via hi = k
            hi, trips = "k", [k - i + 1 for i in range(1, k + 1)]
        elif shape == "indirect":
            hi = "l(idx(i))"
            trips = [l_values[idx_values[i - 1] - 1] for i in range(1, k + 1)]
        elif shape == "literal":
            lit = rng.choice([0, 1, 1, 2, 3])
            hi, trips = str(lit), [lit] * k
        elif shape == "clamped":
            hi = "min(l(i), 2)"
            trips = [min(l_values[i - 1], 2) for i in range(1, k + 1)]
        else:  # shifted
            hi = "l(i) - 1"
            trips = [max(0, l_values[i - 1] - 1) for i in range(1, k + 1)]
        inner_lo = "i" if shape == "triangular2" else "1"
        if 0 in trips:
            features.append("zero-trip")
        if 1 in trips:
            features.append("one-trip")
        maxj = max([cfg.max_trip, k, 2])

        # --- body --------------------------------------------------------
        partitionable = True
        pre: list[str] = []
        post: list[str] = []
        body: list[str] = []

        if rng.random() < cfg.pre_prob:
            features.append("pre")
            pre.append(f"z(i) = {_int_expr(rng, ('i', 'k'))}")
        store = f"x(i, j) = {_int_expr(rng, ('i', 'j', 'k'))}"
        if rng.random() < cfg.guard_prob:
            features.append("guard")
            if rng.random() < 0.5:
                body += [f"IF ({_cond_expr(rng)}) THEN", f"  {store}", "ENDIF"]
            else:
                alt = f"x(i, j) = {_int_expr(rng, ('i', 'j'))}"
                body += [
                    f"IF ({_cond_expr(rng)}) THEN",
                    f"  {store}",
                    "ELSE",
                    f"  {alt}",
                    "ENDIF",
                ]
        else:
            body.append(store)
        if rng.random() < cfg.deep_prob:
            features.append("deep")
            body += ["DO m = 1, 2", "  x(i, j) = x(i, j) + m", "ENDDO"]
        if rng.random() < cfg.ywrite_prob:
            features.append("ywrite")
            partitionable = False
            body.append(f"y(j) = {_int_expr(rng, ('i', 'j'))}")
        if rng.random() < cfg.acc_prob:
            features.append("scalar-acc")
            partitionable = False
            body.append(f"s = s + {_int_expr(rng, ('i', 'j'))}")
        body.append("w(i) = w(i) + 1")
        if rng.random() < cfg.post_prob:
            features.append("post")
            post.append("z(i) = z(i) + w(i)")

        # --- assemble ----------------------------------------------------
        lines = [
            f"      PROGRAM FZ{index}",
            "      INTEGER i, j, m, k, s",
            f"      INTEGER l({kext}), idx({kext}), w({kext}), z({kext})",
            f"      INTEGER y({maxj})",
            f"      INTEGER x({kext}, {maxj})",
            "      s = 0",
            "      DO i = 1, k",
        ]
        lines += [f"        {stmt}" for stmt in pre]
        lines.append(f"        DO j = {inner_lo}, {hi}")
        lines += [f"          {stmt}" for stmt in body]
        lines.append("        ENDDO")
        lines += [f"        {stmt}" for stmt in post]
        lines += ["      ENDDO", "      END"]

        bindings = {
            "k": k,
            "l": np.array(l_values, dtype=np.int64),
            "idx": np.array(idx_values, dtype=np.int64),
        }
        return GeneratedProgram(
            seed=self.seed,
            index=index,
            source="\n".join(lines) + "\n",
            bindings=bindings,
            features=tuple(features),
            trip_counts=tuple(trips),
            outer_trips=k,
            min_trips_ok=(k == 0) or all(t >= 1 for t in trips),
            partitionable=partitionable,
        )
