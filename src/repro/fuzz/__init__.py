"""Differential fuzzing + translation validation for the transforms.

The paper's whole value proposition is semantic equivalence: the
flattened SIMD program (Figs. 10-12) must compute exactly what the
original nest computes, under the safety preconditions of Section 6.
This package hunts for violations systematically:

* :mod:`repro.fuzz.generator` — a seeded, deterministic generator of
  random-but-well-formed MiniF loop nests (trip-count shapes,
  triangular/indirect bounds, guards, depth-3 nests, reductions, edge
  trip counts 0/1/N), each with concrete bindings and ground-truth
  metadata (actual trip counts, partitionability).
* :mod:`repro.fuzz.oracle` — the differential oracle: every transform
  variant x backend combination that the applicability analysis
  accepts must agree with the sequential reference on the observable
  state; a disagreement on a legal variant is a transform bug, an
  accepted-but-wrong program is a safety-checker bug.
* :mod:`repro.fuzz.invariants` — per-run translation validation:
  guard-flag monotonicity, per-lane work against Eq. 1, and total
  useful-iteration conservation (the VM checks mask-stack balance
  natively).
* :mod:`repro.fuzz.reduce` — a delta-debugging reducer that shrinks a
  failing program to a minimal reproducer.
* :mod:`repro.fuzz.corpus` — failure persistence: seed, program,
  bindings, divergence and crash dump as a replayable JSON entry.
* :mod:`repro.fuzz.session` — the campaign driver behind
  ``repro fuzz --seed S --iterations N``.
"""

from .corpus import CorpusEntry, load_entry, replay_entry, save_entry
from .generator import GeneratedProgram, GenConfig, ProgramGenerator
from .oracle import DifferentialOracle, Divergence, ProgramVerdict
from .reduce import shrink_program
from .session import FuzzReport, run_fuzz

__all__ = [
    "CorpusEntry",
    "DifferentialOracle",
    "Divergence",
    "FuzzReport",
    "GenConfig",
    "GeneratedProgram",
    "ProgramGenerator",
    "ProgramVerdict",
    "load_entry",
    "replay_entry",
    "run_fuzz",
    "save_entry",
    "shrink_program",
]
