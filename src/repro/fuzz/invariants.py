"""Per-run translation validation for flattened programs.

Three invariant families (the VM checks mask-stack balance natively —
a WHERE may only narrow lane activity and every pushed mask scope must
be popped by HALT; see :mod:`repro.vm.machine`):

* **Guard-flag monotonicity** — in the conservative (Fig. 10) form the
  outer-continue flag ``t1`` latches "this lane still has work"; once
  a lane's flag drops it must never rise again.  A False->True
  transition means the flattened control resurrected an exhausted
  lane.
* **Per-lane work (Eq. 1)** — in a partitioned (SPMD) run, the number
  of useful inner iterations each lane executes must equal the trip
  counts of exactly the outer iterations its layout assigns to it —
  the per-processor work ``Σ_i L_i^p`` of the paper's Equation 1.
* **Total-work conservation** — every legal variant must execute each
  useful inner iteration exactly once: the planted per-iteration
  marker ``w(i) = w(i) + 1`` must sum to the generator-predicted
  total in every leg's final environment.
"""

from __future__ import annotations

import numpy as np

from ..lang import ast


def _lane_bools(value, nproc: int) -> np.ndarray:
    """Broadcast a mask/flag value to a per-lane boolean vector."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(nproc, bool(arr))
    if arr.ndim > 1:
        arr = arr.all(axis=tuple(range(1, arr.ndim)))
    return arr.astype(bool)


class ValidatingHook:
    """A statement hook that watches translation invariants live.

    Attach to a tree-walking SIMD run (``statement_hook=hook``); after
    the run, :attr:`violations` holds every observed invariant break
    and :attr:`lane_work` the per-lane count of useful inner
    iterations (executions of the ``marker`` assignment under the
    activity mask).

    Args:
        nproc: Lane count of the machine under test.
        flag: Name of the latched outer-continue flag to watch
            (``"t1"`` in the conservative variant; None disables).
        marker: Array name whose increment marks one useful inner
            iteration (None disables work counting).
    """

    def __init__(
        self, nproc: int, flag: str | None = "t1", marker: str | None = "w"
    ):
        self.nproc = nproc
        self.flag = flag
        self.marker = marker
        self.lane_work = np.zeros(nproc, dtype=np.int64)
        self.violations: list[str] = []
        self._prev_flag: np.ndarray | None = None

    def __call__(self, stmt, env: dict, mask) -> None:
        if self.marker is not None and self._is_marker(stmt):
            self.lane_work += _lane_bools(mask, self.nproc).astype(np.int64)
        if self.flag is not None:
            value = env.get(self.flag)
            if value is not None:
                now = _lane_bools(value, self.nproc)
                prev = self._prev_flag
                if prev is not None and bool(np.any(~prev & now)):
                    lanes = np.flatnonzero(~prev & now).tolist()
                    self.violations.append(
                        f"flag '{self.flag}' rose on exhausted lane(s) "
                        f"{lanes} (monotonicity violated)"
                    )
                self._prev_flag = now

    def _is_marker(self, stmt) -> bool:
        return (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.target, ast.ArrayRef)
            and stmt.target.name == self.marker
        )


def predicted_lane_work(
    trips: tuple[int, ...], nproc: int, layout: str
) -> list[int]:
    """Eq. 1 per-processor work for a partitioned outer loop.

    Args:
        trips: Inner trip count of outer iteration ``i`` (1-based).
        nproc: PE count.
        layout: ``"block"`` or ``"cyclic"`` (the layouts of
            :func:`repro.transform.parallel.partition_outer`).
    """
    k = len(trips)
    loads = [0] * nproc
    if layout == "block":
        chunk = (k + nproc - 1) // nproc if k > 0 else 0
        for p in range(1, nproc + 1):
            start = 1 + (p - 1) * chunk
            last = min(k, start + chunk - 1)
            loads[p - 1] = sum(trips[i - 1] for i in range(start, last + 1))
    elif layout == "cyclic":
        for p in range(1, nproc + 1):
            loads[p - 1] = sum(trips[i - 1] for i in range(p, k + 1, nproc))
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return loads


def check_work_conservation(env: dict, expected_total: int) -> str | None:
    """Total useful iterations executed == generator-predicted total.

    Reads the planted marker array ``w`` from a final environment;
    returns a violation message or None.
    """
    w = env.get("w")
    data = getattr(w, "data", None)
    if data is None:
        return "marker array 'w' missing from final environment"
    total = int(np.asarray(data).sum())
    if total != expected_total:
        return (
            f"work not conserved: {total} useful iterations executed, "
            f"expected {expected_total}"
        )
    return None
