"""Delta-debugging reducer for failing fuzz programs.

Given a :class:`~repro.fuzz.generator.GeneratedProgram` and a predicate
("does this still fail the same way?"), greedily applies shrinking
passes until a fixpoint:

* delete a statement (recursively, inside guards and nested loops);
* replace an ``IF`` by one of its branches;
* shrink integer literals toward 1;
* shrink the ``k`` binding and the ``l`` trip-count data toward 0/1.

Every candidate is validated (parse + semantic check) and its
ground-truth metadata is *re-measured* by a sequential run — the
planted ``w`` marker yields the actual inner trip counts, so
``min_trips_ok``/``total_work`` stay truthful and the oracle never
asserts a false ``assume_min_trips`` on a shrunk program.  The marker
assignment and the loop-nest spine are never deleted (removing them
would change what is being tested, and the metadata would go stale).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..lang import ast
from ..lang.errors import MiniFError
from ..lang.parser import parse_source
from ..lang.printer import format_source
from ..lang.semantic import check_source
from ..runtime.engine import Engine

#: A path addresses one statement: ``((i, b), ..., last_index)`` where
#: each pair descends into sub-body ``b`` of statement ``i``.
Path = tuple


def _stmt_paths(body: list, prefix: Path = ()):  # document order
    for i, stmt in enumerate(body):
        yield prefix + (i,)
        for b, sub in enumerate(ast.sub_bodies(stmt)):
            yield from _stmt_paths(sub, prefix + ((i, b),))


def _resolve(body: list, path: Path):
    cur = body
    for i, b in path[:-1]:
        cur = ast.sub_bodies(cur[i])[b]
    return cur, path[-1]


def _is_marker(stmt, marker: str = "w") -> bool:
    return (
        isinstance(stmt, ast.Assign)
        and isinstance(stmt.target, ast.ArrayRef)
        and stmt.target.name == marker
    )


def _contains_marker(stmt) -> bool:
    return any(_is_marker(node) for node in ast.walk(stmt))


def _recompute_partitionable(routine: ast.Routine) -> bool:
    """Generator ground truth re-derived after an edit: the outer loop
    serializes iff its body still writes a scalar or the ``y`` array."""
    outer = next(
        (
            node
            for node in ast.walk_body(routine.body)
            if isinstance(node, ast.Do) and node.var == "i"
        ),
        None,
    )
    if outer is None:
        return False
    for node in ast.walk_body(outer.body):
        if isinstance(node, ast.Assign):
            if isinstance(node.target, ast.Var):
                return False
            if (
                isinstance(node.target, ast.ArrayRef)
                and node.target.name == "y"
            ):
                return False
    return True


class _Reducer:
    def __init__(self, prog, predicate, engine: Engine | None, max_tests: int):
        self.predicate = predicate
        self.engine = engine if engine is not None else Engine(cache_size=512)
        self.budget = max_tests
        self.tests = 0
        self.best = prog

    # -- candidate construction ----------------------------------------------

    def _rebuild(self, tree: ast.SourceFile, bindings: dict):
        """Validate an edited tree and re-measure its ground truth.

        Returns a candidate GeneratedProgram, or None when the edit is
        not a well-formed program (or lost the marker/nest).
        """
        routine = tree.main
        if not any(_is_marker(node) for node in ast.walk_body(routine.body)):
            return None
        source = format_source(tree)
        try:
            check_source(parse_source(source))
        except MiniFError:
            return None
        k = int(bindings.get("k", 0))
        try:
            env = self.engine.run(
                source,
                {
                    name: value.copy() if isinstance(value, np.ndarray) else value
                    for name, value in bindings.items()
                },
                backend="scalar",
            ).env
        except MiniFError:
            # The reference itself faults; only a "none/scalar" failure
            # can match, and it needs no trip metadata.
            trips: tuple = ()
        else:
            w = np.asarray(getattr(env.get("w"), "data", ()))
            trips = tuple(int(w[i]) for i in range(min(k, len(w))))
        return dataclasses.replace(
            self.best,
            source=source,
            bindings=bindings,
            trip_counts=trips,
            outer_trips=k,
            min_trips_ok=(k == 0) or all(t >= 1 for t in trips),
            partitionable=_recompute_partitionable(routine),
        )

    def _try(self, tree: ast.SourceFile, bindings: dict) -> bool:
        if self.tests >= self.budget:
            return False
        candidate = self._rebuild(tree, bindings)
        if candidate is None:
            return False
        self.tests += 1
        if self.predicate(candidate):
            self.best = candidate
            return True
        return False

    # -- shrinking passes ----------------------------------------------------

    def _pass_statements(self) -> bool:
        """Delete statements / unwrap IF branches.  True on progress."""
        tree = parse_source(self.best.source)
        routine = tree.main
        for path in list(_stmt_paths(routine.body)):
            parent, i = _resolve(routine.body, path)
            stmt = parent[i]
            if isinstance(stmt, ast.Decl) or _is_marker(stmt):
                continue
            edits: list[list] = []
            if not _contains_marker(stmt):
                edits.append([])  # plain deletion
            if isinstance(stmt, ast.If):
                edits.append(stmt.then_body)
                if stmt.else_body:
                    edits.append(stmt.else_body)
            for replacement in edits:
                work = parse_source(self.best.source)
                parent, i = _resolve(work.main.body, path)
                parent[i : i + 1] = ast.clone(replacement)
                if self._try(work, dict(self.best.bindings)):
                    return True
        return False

    def _pass_literals(self) -> bool:
        """Shrink integer literals toward 1 (loop bounds, RHS constants)."""
        tree = parse_source(self.best.source)
        literals = [
            node
            for stmt in tree.main.body
            if not isinstance(stmt, ast.Decl)
            for node in ast.walk(stmt)
            if isinstance(node, ast.IntLit) and node.value > 1
        ]
        for which in range(len(literals)):
            work = parse_source(self.best.source)
            targets = [
                node
                for stmt in work.main.body
                if not isinstance(stmt, ast.Decl)
                for node in ast.walk(stmt)
                if isinstance(node, ast.IntLit) and node.value > 1
            ]
            targets[which].value = 1
            if self._try(work, dict(self.best.bindings)):
                return True
        return False

    def _pass_bindings(self) -> bool:
        """Shrink ``k`` and the ``l`` trip-count array toward 0/1."""
        k = int(self.best.bindings.get("k", 0))
        for smaller in sorted({0, 1, k // 2, k - 1}):
            if not 0 <= smaller < k:
                continue
            tree = parse_source(self.best.source)
            if self._try(tree, dict(self.best.bindings, k=smaller)):
                return True
        l_values = self.best.bindings.get("l")
        if isinstance(l_values, np.ndarray):
            for i, value in enumerate(l_values.tolist()):
                for smaller in (0, 1):
                    if value <= smaller:
                        continue
                    shrunk = l_values.copy()
                    shrunk[i] = smaller
                    tree = parse_source(self.best.source)
                    if self._try(tree, dict(self.best.bindings, l=shrunk)):
                        return True
        return False

    def run(self):
        progress = True
        while progress and self.tests < self.budget:
            progress = (
                self._pass_statements()
                or self._pass_literals()
                or self._pass_bindings()
            )
        return self.best


def shrink_program(prog, predicate, *, engine=None, max_tests: int = 400):
    """Shrink ``prog`` to a minimal program still satisfying ``predicate``.

    Args:
        prog: The failing :class:`GeneratedProgram`.
        predicate: ``candidate -> bool``; True when the candidate still
            exhibits the original failure (typically
            ``lambda p: oracle.check_leg(p, config) is not None``).
        engine: Compile cache to reuse (the oracle's, ideally).
        max_tests: Hard cap on predicate evaluations.

    Returns:
        The smallest program found (``prog`` itself if nothing shrank).
    """
    return _Reducer(prog, predicate, engine, max_tests).run()
