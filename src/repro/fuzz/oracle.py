"""The differential oracle: all legal variants must agree.

For each generated program the oracle runs a matrix of
transform x backend legs and compares every leg's observable final
state against the sequential reference:

====================  ===========================  ====================
leg                   backends                     legality
====================  ===========================  ====================
none                  scalar (reference)           always
none                  vm + interpreter (lockstep)  always
none                  fused vm + unfused vm        always
none                  mimd (P private procs)       always
none                  vm / scalar interrupted at   always
                      a random step + resumed
                      from checkpoint
none                  pmimd killed between         ``pmimd_chaos``
                      checkpoints + replayed
flatten general       scalar (F77 form)            always
flatten general       vm + interpreter             always
flatten optimized     vm + interpreter             checker accepts, or
                                                   condition 2 holds on
                                                   the data
flatten done          vm + interpreter             same as optimized +
                                                   derivable done test
flatten auto          vm + interpreter             always (falls back)
flatten auto          fused vm + unfused vm        always
coalesce              scalar                       rectangular nests
fission               scalar (F77 form)            dependence SCCs split
fission               vm + interpreter             dependence SCCs split
interchange           scalar (F77 form)            perfect rectangular
                                                   2-nest, no ``(<, >)``
                                                   direction vector
interchange           vm + interpreter             same
simdize (Sec. 3)      vm + interpreter             partitionable outer
spmd (Fig. 15)        vm + interpreter             partitionable outer
====================  ===========================  ====================

Lockstep legs run with ``verify=True``, so the VM and the tree-walking
interpreter are *also* checked against each other on env and exact
operation counters (:func:`repro.reliability.check_agreement` — the
same code path ``Engine.run(verify=True)`` uses).  The ``vm-fuse``
legs additionally pass the *fused* CodeObject through the bytecode
verifier and demand that fused and unfused VM dispatch agree on env,
step totals, and event breakdowns — superinstruction fusion and its
batched accounting must be observationally invisible.

The applicability analysis (:mod:`repro.analysis.applicability`) is
consulted for every variant/assumption combination and must agree with
what the transform actually accepts: a variant the report promises but
the transform rejects (or vice versa) is a **checker gap**, as is a
program the checker accepts without assumptions that then computes the
wrong answer.  A divergence under a *violated* ``assume_min_trips``
assertion is the caller's fault and is never compared.

Two static checkers are cross-checked against the runtime as well.
Every leg's :class:`~repro.vm.isa.CodeObject` passes through the
bytecode verifier (:mod:`repro.vm.verify`) before it runs — a finding
on compiler-emitted code is a ``verifier`` divergence.  And the lint
engine (:mod:`repro.diag`) is correlated with observed behaviour in
both directions: a runtime :class:`DivergenceFault` /
:class:`OutOfBoundsFault` on a lint-clean program, or lint *errors* on
a program every leg runs clean, are ``checker-gap`` divergences.

Verdict kinds: ``env-divergence`` (legal leg disagrees with the
reference), ``backend-disagreement`` (vm vs interpreter),
``fault`` (a legal leg crashed), ``checker-gap``, ``verifier``
(compiler-emitted bytecode failed verification), ``invariant``
(translation validation failed: flag monotonicity, Eq. 1 per-lane
work, total-work conservation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import evaluate_flattening
from ..diag import lint_source
from ..lang import ast
from ..lang.errors import MiniFError, TransformError
from ..lang.parser import parse_source
from ..reliability import crash_dump_for
from ..reliability.budget import Budget
from ..reliability.errors import (
    BackendFault,
    BudgetExceeded,
    DivergenceFault,
    OutOfBoundsFault,
)
from ..reliability.faults import FaultPlan
from ..reliability.policy import FallbackPolicy, check_agreement
from ..reliability.supervisor import SupervisionPolicy
from ..runtime.config import BackendConfig
from ..runtime.engine import Engine
from ..vm.fuse import fuse_code
from ..vm.verify import verify_code
from ..transform.pipeline import find_nest_sites, structurize_program
from .generator import GeneratedProgram
from .invariants import (
    ValidatingHook,
    check_work_conservation,
    predicted_lane_work,
)

#: Variant strength order used to cross-check the applicability report.
_RANK = {"general": 0, "optimized": 1, "done": 2}


@dataclass
class Divergence:
    """One detected bug candidate.

    Attributes:
        kind: ``env-divergence`` / ``backend-disagreement`` / ``fault``
            / ``checker-gap`` / ``invariant``.
        config: The leg it occurred on (e.g. ``"flatten/general/simd"``).
        detail: Human-readable description of the disagreement.
        crash_dump: Postmortem from :mod:`repro.reliability` when the
            leg faulted.
    """

    kind: str
    config: str
    detail: str
    crash_dump: dict | None = None

    def key(self) -> tuple[str, str]:
        """Identity used by the reducer: same kind on the same leg."""
        return (self.kind, self.config)


@dataclass
class LegOutcome:
    """How one leg of the matrix went: ``ok``/``rejected``/``skipped``."""

    label: str
    status: str
    detail: str = ""


@dataclass
class ProgramVerdict:
    """Oracle result for one program."""

    program: GeneratedProgram
    legs: list[LegOutcome] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)
    #: ``(leg label, fault class name)`` for every run that died with a
    #: divergence/bounds fault — the lint cross-check's evidence.
    runtime_faults: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _outer_flag_name(tree: ast.SourceFile) -> str | None:
    """Name of the flattened loop's latched continue flag.

    The flattening emits ``WHILE (any(flag))`` around the fused body;
    only that outermost flag is monotone per lane (inner-level flags
    re-arm when a lane advances to its next outer iteration).  The
    first WHILE in document order is the outermost one.
    """
    for node in ast.walk_body(tree.main.body):
        if isinstance(node, ast.While):
            cond = node.cond
            if (
                isinstance(cond, (ast.Call, ast.ArrayRef))
                and cond.name == "any"
            ):
                args = cond.args if isinstance(cond, ast.Call) else cond.subs
                if len(args) == 1 and isinstance(args[0], ast.Var):
                    return args[0].name
            if isinstance(cond, ast.Var):
                return cond.name
            return None
    return None


def _dump(error: BaseException) -> dict:
    """Postmortem for any exception (MiniF errors carry snapshots)."""
    if isinstance(error, MiniFError):
        return crash_dump_for(error)
    return {"error": type(error).__name__, "message": str(error)}


def _copy_bindings(bindings: dict) -> dict:
    return {
        name: value.copy() if isinstance(value, np.ndarray) else value
        for name, value in bindings.items()
    }


class DifferentialOracle:
    """Runs the variant x backend matrix for generated programs.

    Args:
        nproc: Lockstep PE count for the SIMD/SPMD/MIMD legs.
        engine: Compile cache to use (fresh when omitted — the fuzz
            session must never share a cache with a mutated transform
            under mutation testing).
        pmimd: Also run the process-parallel pmimd backend on every
            program and demand env + counter agreement with the
            in-process MIMD simulator (opt-in: forks worker processes
            per program).
        pmimd_chaos: Additionally run a pmimd leg under a seeded
            :class:`FaultPlan` injecting worker kill/hang/slow faults
            at ``chaos_rate``, with a pmimd->mimd fallback chain; the
            supervised (or degraded) run must still match the
            reference, and every failed attempt must carry a
            taxonomy classification.  Implies nothing about ``pmimd``
            — enable both for the full matrix.
        chaos_rate: Per-shard worker fault probability for the chaos
            leg.
    """

    #: Supervision tuned for fuzzing: fast wedge detection and small
    #: backoffs so an injected hang costs well under a second.
    FUZZ_SUPERVISION = SupervisionPolicy(
        wedge_timeout=0.75,
        backoff_base_seconds=0.01,
        backoff_max_seconds=0.05,
        straggler_floor_seconds=0.2,
    )

    def __init__(
        self,
        nproc: int = 4,
        engine: Engine | None = None,
        *,
        pmimd: bool = False,
        pmimd_chaos: bool = False,
        chaos_rate: float = 0.1,
    ):
        if nproc < 2:
            raise ValueError(f"the oracle needs nproc >= 2, got {nproc}")
        self.nproc = nproc
        self.engine = engine if engine is not None else Engine(cache_size=512)
        self.pmimd = pmimd
        self.pmimd_chaos = pmimd_chaos
        self.chaos_rate = chaos_rate
        # Code objects already verified this session — the engine caches
        # compiles, so the same object comes back on many legs.
        self._verified: set[int] = set()

    # -- public API ----------------------------------------------------------

    def check(self, prog: GeneratedProgram) -> ProgramVerdict:
        """Run the full matrix for one program."""
        verdict = ProgramVerdict(prog)
        try:
            ref_env = self._reference(prog)
        except Exception as error:
            verdict.divergences.append(
                Divergence(
                    "fault",
                    "none/scalar",
                    f"reference run failed: {type(error).__name__}: {error}",
                    crash_dump=_dump(error),
                )
            )
            return verdict
        conserved = check_work_conservation(ref_env, prog.total_work)
        if conserved is not None:
            verdict.divergences.append(
                Divergence("invariant", "none/scalar", conserved)
            )
            return verdict

        report = self._consult_applicability(prog, verdict)
        self._untransformed_legs(prog, ref_env, verdict)
        self._checkpoint_legs(prog, ref_env, verdict)
        if self.pmimd or self.pmimd_chaos:
            self._pmimd_legs(prog, ref_env, verdict)
        self._fused_legs(prog, verdict)
        self._flatten_legs(prog, ref_env, verdict)
        self._coalesce_leg(prog, ref_env, verdict)
        self._dep_legs(prog, ref_env, verdict)
        if prog.partitionable and report is not None and report.safe is True:
            self._partitioned_legs(prog, ref_env, verdict)
        else:
            verdict.legs.append(
                LegOutcome(
                    "spmd+simdize",
                    "skipped",
                    "outer loop not partitionable "
                    f"(generator={prog.partitionable}, "
                    f"checker={None if report is None else report.safe})",
                )
            )
        self._lint_cross_check(prog, verdict)
        return verdict

    def check_leg(self, prog: GeneratedProgram, config: str) -> Divergence | None:
        """Re-run the matrix and return the first divergence on ``config``.

        The reducer's predicate: a shrunk program still "fails the same
        way" when the same leg reports the same kind of divergence.
        """
        verdict = self.check(prog)
        for divergence in verdict.divergences:
            if divergence.config == config:
                return divergence
        return None

    # -- reference and comparison --------------------------------------------

    def _reference(self, prog: GeneratedProgram) -> dict:
        result = self.engine.run(
            prog.source, _copy_bindings(prog.bindings), backend="scalar"
        )
        return result.env

    def _compare(
        self,
        prog: GeneratedProgram,
        ref_env: dict,
        env: dict,
        partitioned: bool,
    ) -> str | None:
        """First observable disagreement with the reference, or None."""
        for name in prog.outputs:
            ref = ref_env.get(name)
            if ref is None:
                continue
            got = env.get(name)
            if got is None:
                return f"array '{name}' missing from final environment"
            a = np.asarray(getattr(ref, "data", ref))
            b = np.asarray(getattr(got, "data", got))
            if a.shape != b.shape:
                return f"array '{name}' shape {b.shape} != {a.shape}"
            if not np.array_equal(a, b):
                where = np.argwhere(a != b)[0].tolist()
                return (
                    f"array '{name}' differs first at {where}: "
                    f"{b[tuple(where)]} != {a[tuple(where)]}"
                )
        # Scalar accumulators replicate per lane in partitioned runs and
        # carry per-lane partials; only the unpartitioned legs compare
        # them (partitioned legs exclude accumulator programs anyway).
        scalar_names = prog.observables if not partitioned else ("k",)
        for name in scalar_names:
            ref = ref_env.get(name)
            if ref is None:
                continue
            got = env.get(name)
            if got is None:
                return f"scalar '{name}' missing from final environment"
            value = np.asarray(got)
            if value.ndim >= 1:
                if not np.all(value == value.flat[0]):
                    return (
                        f"scalar '{name}' diverged across lanes: "
                        f"{value.tolist()}"
                    )
                value = value.flat[0]
            if int(value) != int(ref):
                return f"scalar '{name}' = {int(value)}, expected {int(ref)}"
        return None

    # -- applicability consultation ------------------------------------------

    def _consult_applicability(
        self, prog: GeneratedProgram, verdict: ProgramVerdict
    ):
        """Cross-check the Section 6 checker against the transform.

        Returns the no-assumption report (for the safety verdict), and
        records a checker-gap divergence whenever the strongest variant
        the report promises is not exactly what the transform accepts.
        """
        tree = structurize_program(parse_source(prog.source))
        sites = find_nest_sites(tree)
        if not sites:
            verdict.divergences.append(
                Divergence(
                    "checker-gap",
                    "analysis/applicability",
                    "generator emitted a nest the site finder cannot see",
                )
            )
            return None
        stmt = sites[0].stmt
        base_report = None
        for amt in (False, True):
            report = evaluate_flattening(stmt, assume_min_trips=amt)
            if base_report is None:
                base_report = report
            promised = _RANK.get(report.variant, -1)
            for variant in ("optimized", "done"):
                compiled = True
                try:
                    self.engine.compile(
                        prog.source,
                        transform="flatten",
                        variant=variant,
                        assume_min_trips=amt,
                        simd=True,
                    )
                except TransformError:
                    compiled = False
                expected = _RANK[variant] <= promised
                if compiled != expected:
                    verdict.divergences.append(
                        Divergence(
                            "checker-gap",
                            f"flatten/{variant}/assume={amt}",
                            f"applicability promises '{report.variant}' "
                            f"but variant '{variant}' "
                            f"{'compiled' if compiled else 'was rejected'}",
                        )
                    )
        # "Safe" on a serializing loop is accepted-but-wrong — unless
        # the analysis itself qualifies it as needing reduction
        # support, which partition_outer does not provide (and the
        # partitioned legs stay off either way).
        if (
            not prog.partitionable
            and base_report.safe is True
            and not base_report.parallelism.reductions
        ):
            verdict.divergences.append(
                Divergence(
                    "checker-gap",
                    "analysis/dependence",
                    "dependence test calls a serializing outer loop "
                    "parallel (accepted-but-wrong risk)",
                )
            )
        return base_report

    def _lint_cross_check(
        self, prog: GeneratedProgram, verdict: ProgramVerdict
    ) -> None:
        """Correlate the static lint report with observed behaviour.

        A divergence/bounds fault on a lint-clean program means the
        abstract interpreter under-approximated (a rule gap); lint
        *errors* on a program that every leg ran clean mean it
        over-approximated badly enough to flag generator output.
        Either direction is a checker gap worth a bug report.
        """
        try:
            report = lint_source(prog.source, filename="<fuzz>")
        except Exception as error:  # the linter must never kill the oracle
            verdict.divergences.append(
                Divergence(
                    "checker-gap",
                    "lint/static",
                    f"lint crashed on generator output: "
                    f"{type(error).__name__}: {error}",
                )
            )
            return
        codes = sorted({finding.code for finding in report.errors})
        if verdict.runtime_faults and not codes:
            leg, fault = verdict.runtime_faults[0]
            verdict.divergences.append(
                Divergence(
                    "checker-gap",
                    "lint/runtime",
                    f"lint is error-clean but leg '{leg}' raised "
                    f"{fault} at run time",
                )
            )
        elif codes and not verdict.runtime_faults and not any(
            d.kind == "fault" for d in verdict.divergences
        ):
            verdict.divergences.append(
                Divergence(
                    "checker-gap",
                    "lint/runtime",
                    f"lint reports {codes} but every leg ran clean",
                )
            )

    def _verify_bytecode(
        self, program, label: str, verdict: ProgramVerdict
    ) -> None:
        """Bytecode verifier leg: compiler-emitted code must verify."""
        code = program.bytecode()
        if code is None or id(code) in self._verified:
            return
        self._verified.add(id(code))
        for finding in verify_code(code).errors:
            verdict.divergences.append(
                Divergence(
                    "verifier",
                    label,
                    f"[{finding.code}] {finding.message}",
                )
            )

    def _latched_flag(self, prog: GeneratedProgram, kwargs: dict) -> str | None:
        """Continue-flag name of the compiled flattened form (or None)."""
        try:
            return _outer_flag_name(
                self.engine.compile(prog.source, **kwargs).tree
            )
        except Exception:
            return None

    # -- matrix legs ---------------------------------------------------------

    def _run_and_compare(
        self,
        prog: GeneratedProgram,
        ref_env: dict,
        verdict: ProgramVerdict,
        label: str,
        compile_kwargs: dict,
        *,
        partitioned: bool = False,
        assumed: bool = False,
        mode: str = "simd",
        statement_hook=None,
    ):
        """Compile + run one leg, record its outcome/divergence.

        Returns the leg's final env (or None when it did not run).
        """
        try:
            program = self.engine.compile(prog.source, **compile_kwargs)
            program.tree  # force any lazy transform error
        except TransformError as error:
            verdict.legs.append(LegOutcome(label, "rejected", str(error)))
            return None
        except Exception as error:
            verdict.divergences.append(
                Divergence(
                    "fault",
                    label,
                    f"compiler crashed: {type(error).__name__}: {error}",
                    crash_dump=_dump(error),
                )
            )
            verdict.legs.append(LegOutcome(label, "ok", "faulted"))
            return None
        if mode not in ("scalar", "mimd"):
            self._verify_bytecode(program, label, verdict)
        bindings = _copy_bindings(prog.bindings)
        try:
            if mode == "scalar":
                result = program.run(bindings, backend="scalar")
            elif mode == "mimd":
                result = program.run(
                    nproc=self.nproc,
                    backend="mimd",
                    bindings_for=lambda p: _copy_bindings(prog.bindings),
                )
            elif statement_hook is not None:
                result = program.run(
                    bindings,
                    nproc=self.nproc,
                    backend="interpreter",
                    statement_hook=statement_hook,
                )
            else:
                result = program.run(bindings, nproc=self.nproc, verify=True)
        except BackendFault as error:
            verdict.divergences.append(
                Divergence(
                    "backend-disagreement",
                    label,
                    str(error),
                    crash_dump=crash_dump_for(error),
                )
            )
            verdict.legs.append(LegOutcome(label, "ok", "diverged"))
            return None
        except Exception as error:
            detail = f"{type(error).__name__}: {error}"
            if not isinstance(error, MiniFError):
                detail = f"unwrapped exception escaped the backend: {detail}"
            if isinstance(error, (DivergenceFault, OutOfBoundsFault)):
                verdict.runtime_faults.append((label, type(error).__name__))
            verdict.divergences.append(
                Divergence("fault", label, detail, crash_dump=_dump(error))
            )
            verdict.legs.append(LegOutcome(label, "ok", "faulted"))
            return None
        envs = result.env if isinstance(result.env, list) else [result.env]
        for proc, env in enumerate(envs):
            mismatch = self._compare(prog, ref_env, env, partitioned)
            if mismatch is None:
                mismatch = check_work_conservation(env, prog.total_work)
                kind = "invariant" if mismatch else None
            else:
                # A wrong answer the checker accepted without any
                # caller assertion is a safety-checker bug; under a
                # (true) assertion or on always-legal variants it is a
                # transform bug.
                kind = "env-divergence"
            if mismatch is not None:
                prefix = f"proc {proc + 1}: " if len(envs) > 1 else ""
                verdict.divergences.append(
                    Divergence(kind, label, prefix + mismatch)
                )
                verdict.legs.append(LegOutcome(label, "ok", "diverged"))
                return None
        verdict.legs.append(LegOutcome(label, "ok"))
        return envs[0]

    def _untransformed_legs(self, prog, ref_env, verdict) -> None:
        self._run_and_compare(
            prog, ref_env, verdict, "none/simd", {}, mode="simd"
        )
        self._run_and_compare(
            prog, ref_env, verdict, "none/mimd", {}, mode="mimd"
        )

    def _checkpoint_legs(self, prog, ref_env, verdict) -> None:
        """Durable-execution legs: interrupt + resume == uninterrupted.

        For the VM and the scalar interpreter: run the untransformed
        program to completion, then re-run it under a step budget that
        kills it at a seeded random interior step while capturing
        checkpoints every few steps, resume from the last captured
        checkpoint, and demand that the resumed run's final environment
        *and* exact operation counters match the uninterrupted run
        (:func:`check_agreement`) as well as the sequential reference.
        When the interrupt lands before the first checkpoint boundary,
        the documented fallback — a clean rerun — must still agree.
        """
        import random

        rng = random.Random((prog.seed << 16) ^ (prog.index * 0x9E37) ^ 0xC4C7)
        for label, backend in (
            ("none/vm-ckpt", "vm"),
            ("none/interp-ckpt", "scalar"),
        ):
            self._checkpoint_leg(prog, ref_env, verdict, label, backend, rng)

    def _checkpoint_leg(
        self, prog, ref_env, verdict, label: str, backend: str, rng
    ) -> None:
        try:
            program = self.engine.compile(prog.source)
            program.tree
        except Exception:
            return  # the untransformed legs already reported this
        nproc = self.nproc if backend == "vm" else 0
        try:
            plain = program.run(
                _copy_bindings(prog.bindings), nproc=nproc, backend=backend
            )
        except Exception:
            return  # faults of the plain backend belong to none/simd
        total = int(plain.counters.total_steps)
        every = rng.randrange(3, 24)
        cut = rng.randrange(1, total) if total > 1 else 1
        checkpoints: list = []
        try:
            program.run(
                _copy_bindings(prog.bindings),
                nproc=nproc,
                backend=backend,
                budget=Budget(max_steps=cut),
                checkpoint_every=every,
                checkpoint_sink=checkpoints.append,
            )
        except BudgetExceeded:
            pass  # the injected interrupt
        except Exception as error:
            verdict.divergences.append(
                Divergence(
                    "fault",
                    label,
                    f"interrupted run died outside the budget taxonomy: "
                    f"{type(error).__name__}: {error}",
                    crash_dump=_dump(error),
                )
            )
            verdict.legs.append(LegOutcome(label, "ok", "faulted"))
            return
        try:
            if checkpoints:
                resumed = program.run(
                    _copy_bindings(prog.bindings),
                    backend="auto",
                    nproc=nproc,
                    resume_from=checkpoints[-1],
                )
            else:
                # Interrupt landed before the first boundary: the
                # documented recovery is a clean rerun.
                resumed = program.run(
                    _copy_bindings(prog.bindings), nproc=nproc, backend=backend
                )
        except Exception as error:
            verdict.divergences.append(
                Divergence(
                    "fault",
                    label,
                    f"resume from step "
                    f"{checkpoints[-1].step if checkpoints else 0} failed: "
                    f"{type(error).__name__}: {error}",
                    crash_dump=_dump(error),
                )
            )
            verdict.legs.append(LegOutcome(label, "ok", "faulted"))
            return
        mismatch = self._compare(prog, ref_env, resumed.env, False)
        if mismatch is not None:
            verdict.divergences.append(
                Divergence(
                    "env-divergence",
                    label,
                    f"resumed at step "
                    f"{checkpoints[-1].step if checkpoints else 0} "
                    f"(interrupt at {cut}, every {every}): {mismatch}",
                )
            )
            verdict.legs.append(LegOutcome(label, "ok", "diverged"))
            return
        try:
            check_agreement(
                plain.env,
                plain.counters,
                resumed.env,
                resumed.counters,
                backends=(backend, f"{backend}-resumed"),
            )
        except BackendFault as error:
            verdict.divergences.append(
                Divergence(
                    "backend-disagreement",
                    label,
                    f"resume is not exact (interrupt at {cut}, "
                    f"every {every}): {error}",
                    crash_dump=crash_dump_for(error),
                )
            )
            verdict.legs.append(LegOutcome(label, "ok", "diverged"))
            return
        verdict.legs.append(LegOutcome(label, "ok"))

    def _pmimd_legs(self, prog, ref_env, verdict) -> None:
        """Process-parallel legs: pmimd must be indistinguishable from mimd.

        The in-process MIMD simulator is the trusted twin: both levels
        run the *same* per-processor scalar programs, so their final
        environments and per-processor statement counters must agree
        exactly (:func:`check_agreement`), and both must match the
        sequential reference.  The chaos leg re-runs pmimd under a
        seeded worker-fault plan with a pmimd->mimd fallback chain —
        recovery (or degradation) must be observationally invisible,
        and every failed attempt must be classified in the
        reliability taxonomy.
        """
        try:
            program = self.engine.compile(prog.source)
            program.tree
        except Exception:
            return  # the untransformed legs already reported this
        bindings_for = lambda p: _copy_bindings(prog.bindings)
        try:
            mimd = program.run(
                nproc=self.nproc, backend="mimd", bindings_for=bindings_for
            )
        except Exception:
            return  # ditto: none/mimd owns faults of the simulator
        legs = []
        if self.pmimd:
            legs.append(("none/pmimd", None, None, None))
        if self.pmimd_chaos:
            plan = FaultPlan(
                seed=(prog.seed << 20) ^ prog.index,
                worker_fault_rate=self.chaos_rate,
                slow_seconds=0.01,
                hang_seconds=2.0,
                backends=("pmimd",),
            )
            policy = FallbackPolicy(chain=("pmimd", "mimd"), retries=1)
            legs.append(("none/pmimd-chaos", plan, policy, None))
            # Durable-execution chaos: shard 0's first attempt is killed
            # a few statements in, *between* checkpoint boundaries; the
            # supervisor's replay must resume from the per-processor
            # store and still be observationally invisible.
            ckpt_plan = FaultPlan(
                seed=(prog.seed << 20) ^ prog.index ^ 0x5EED,
                worker_kill=(0,),
                kill_after_steps=3 + prog.index % 13,
                backends=("pmimd",),
            )
            legs.append(("none/pmimd-ckpt", ckpt_plan, None, 5))
        for label, plan, policy, every in legs:
            config = BackendConfig(
                workers=2,
                supervision=self.FUZZ_SUPERVISION,
                checkpoint_every=every,
            )
            try:
                result = program.run(
                    nproc=self.nproc,
                    backend="pmimd",
                    bindings_for=bindings_for,
                    config=config,
                    fault_plan=plan,
                    policy=policy,
                )
            except MiniFError as error:
                verdict.divergences.append(
                    Divergence(
                        "fault",
                        label,
                        f"{type(error).__name__}: {error}",
                        crash_dump=_dump(error),
                    )
                )
                verdict.legs.append(LegOutcome(label, "ok", "faulted"))
                continue
            for attempt in result.attempts:
                if not attempt.ok and not attempt.fault_kind:
                    verdict.divergences.append(
                        Divergence(
                            "fault",
                            label,
                            f"unclassified failure on backend "
                            f"'{attempt.backend}': {attempt.error}",
                        )
                    )
            mismatch = None
            for proc, env in enumerate(result.env):
                mismatch = self._compare(prog, ref_env, env, False)
                if mismatch is not None:
                    mismatch = f"proc {proc + 1}: {mismatch}"
                    break
            if mismatch is not None:
                verdict.divergences.append(
                    Divergence("env-divergence", label, mismatch)
                )
                verdict.legs.append(LegOutcome(label, "ok", "diverged"))
                continue
            try:
                check_agreement(
                    mimd.env,
                    mimd.counters,
                    result.env,
                    result.counters,
                    backends=("mimd", result.backend),
                )
            except BackendFault as error:
                verdict.divergences.append(
                    Divergence(
                        "backend-disagreement",
                        label,
                        str(error),
                        crash_dump=crash_dump_for(error),
                    )
                )
                verdict.legs.append(LegOutcome(label, "ok", "diverged"))
                continue
            verdict.legs.append(LegOutcome(label, "ok"))

    def _fused_legs(self, prog, verdict) -> None:
        """Superinstruction legs: fusion must be observationally invisible.

        For the untransformed and the flattened F90simd forms: the
        fused :class:`~repro.vm.isa.CodeObject` must pass the bytecode
        verifier, and a fused VM run must agree with an unfused VM run
        on the final environment, the step totals, *and* the event
        breakdown (fused dispatch batches its accounting, so this is
        the leg that keeps the batching honest).  A program that
        legitimately faults must fault identically in both modes.
        """
        for label, kwargs in (
            ("none/vm-fuse", {}),
            ("flatten/auto/vm-fuse", {"transform": "flatten", "simd": True}),
        ):
            try:
                program = self.engine.compile(prog.source, **kwargs)
                program.tree  # force any lazy transform error
                code = program.bytecode()
            except TransformError as error:
                verdict.legs.append(LegOutcome(label, "rejected", str(error)))
                continue
            except Exception as error:
                verdict.divergences.append(
                    Divergence(
                        "fault",
                        label,
                        f"compiler crashed: {type(error).__name__}: {error}",
                        crash_dump=_dump(error),
                    )
                )
                verdict.legs.append(LegOutcome(label, "ok", "faulted"))
                continue
            if code is None:
                verdict.legs.append(LegOutcome(label, "skipped", "no bytecode"))
                continue
            for finding in verify_code(fuse_code(code)).errors:
                verdict.divergences.append(
                    Divergence(
                        "verifier",
                        label,
                        f"fused code: [{finding.code}] {finding.message}",
                    )
                )

            outcomes = []
            for fuse in (True, False):
                try:
                    result = program.run(
                        _copy_bindings(prog.bindings),
                        nproc=self.nproc,
                        backend="vm",
                        config=BackendConfig(vm_fuse=fuse),
                    )
                    outcomes.append(("ok", result))
                except MiniFError as error:
                    outcomes.append(("fault", error))
                except Exception as error:
                    verdict.divergences.append(
                        Divergence(
                            "fault",
                            label,
                            "unwrapped exception escaped the VM "
                            f"(fuse={fuse}): {type(error).__name__}: {error}",
                            crash_dump=_dump(error),
                        )
                    )
                    outcomes.append(("fault", error))
            (fused_kind, fused_out), (plain_kind, plain_out) = outcomes
            if fused_kind != plain_kind:
                detail = (
                    f"fused VM {fused_kind}, unfused VM {plain_kind} "
                    f"({type(fused_out).__name__} vs {type(plain_out).__name__})"
                )
                verdict.divergences.append(
                    Divergence("backend-disagreement", label, detail)
                )
                verdict.legs.append(LegOutcome(label, "ok", "diverged"))
                continue
            if fused_kind == "fault":
                if type(fused_out) is not type(plain_out):
                    verdict.divergences.append(
                        Divergence(
                            "backend-disagreement",
                            label,
                            "fused and unfused VM faulted differently: "
                            f"{type(fused_out).__name__} vs "
                            f"{type(plain_out).__name__}",
                        )
                    )
                    verdict.legs.append(LegOutcome(label, "ok", "diverged"))
                else:
                    verdict.legs.append(
                        LegOutcome(label, "ok", "both modes faulted alike")
                    )
                continue
            try:
                check_agreement(
                    fused_out.env,
                    fused_out.counters,
                    plain_out.env,
                    plain_out.counters,
                    backends=("vm+fuse", "vm-nofuse"),
                )
            except BackendFault as error:
                verdict.divergences.append(
                    Divergence(
                        "backend-disagreement",
                        label,
                        str(error),
                        crash_dump=crash_dump_for(error),
                    )
                )
                verdict.legs.append(LegOutcome(label, "ok", "diverged"))
                continue
            verdict.legs.append(LegOutcome(label, "ok"))

    def _flatten_legs(self, prog, ref_env, verdict) -> None:
        base = {"transform": "flatten", "simd": True}
        self._run_and_compare(
            prog,
            ref_env,
            verdict,
            "flatten/general/f77",
            {"transform": "flatten", "variant": "general", "simd": False},
            mode="scalar",
        )
        self._run_and_compare(
            prog,
            ref_env,
            verdict,
            "flatten/general/simd",
            dict(base, variant="general"),
        )
        # Monotonicity of the conservative variant's latched flag.
        flag = self._latched_flag(prog, dict(base, variant="general"))
        hook = ValidatingHook(self.nproc, flag=flag, marker=None)
        self._run_and_compare(
            prog,
            ref_env,
            verdict,
            "flatten/general/hooked",
            dict(base, variant="general"),
            statement_hook=hook,
        )
        for violation in hook.violations:
            verdict.divergences.append(
                Divergence("invariant", "flatten/general/hooked", violation)
            )
        for variant in ("optimized", "done"):
            label = f"flatten/{variant}/simd"
            kwargs = dict(base, variant=variant)
            accepted_plain = True
            try:
                self.engine.compile(prog.source, **kwargs)
            except TransformError:
                accepted_plain = False
            if accepted_plain:
                self._run_and_compare(prog, ref_env, verdict, label, kwargs)
            elif prog.min_trips_ok:
                self._run_and_compare(
                    prog,
                    ref_env,
                    verdict,
                    label,
                    dict(kwargs, assume_min_trips=True),
                    assumed=True,
                )
            else:
                verdict.legs.append(
                    LegOutcome(
                        label,
                        "skipped",
                        "assume_min_trips would be a false assertion "
                        "(data has a zero-trip inner loop)",
                    )
                )
        self._run_and_compare(
            prog,
            ref_env,
            verdict,
            "flatten/auto/simd",
            dict(base, variant="auto", assume_min_trips=prog.min_trips_ok),
            assumed=prog.min_trips_ok,
        )

    def _coalesce_leg(self, prog, ref_env, verdict) -> None:
        self._run_and_compare(
            prog,
            ref_env,
            verdict,
            "coalesce/f77",
            {"transform": "coalesce"},
            mode="scalar",
        )

    def _dep_legs(self, prog, ref_env, verdict) -> None:
        """Dependence-framework legs: fission and interchange.

        Both transforms consult :func:`repro.analysis.dep.
        build_dependence_graph` for legality, so every accepted program
        is a soundness claim about the distance/direction vectors: a
        dependence the tests wrongly refute reorders statement
        instances and shows up here as an env divergence against the
        sequential reference.  Rejections (``TransformError``) are the
        expected outcome on serializing shapes and are recorded as
        ``rejected`` legs, not failures.
        """
        for transform in ("fission", "interchange"):
            self._run_and_compare(
                prog,
                ref_env,
                verdict,
                f"none/{transform}/f77",
                {"transform": transform},
                mode="scalar",
            )
            self._run_and_compare(
                prog,
                ref_env,
                verdict,
                f"none/{transform}",
                {"transform": transform},
            )

    def _partitioned_legs(self, prog, ref_env, verdict) -> None:
        self._run_and_compare(
            prog,
            ref_env,
            verdict,
            "simdize/block",
            {"transform": "simdize", "width": self.nproc, "layout": "block"},
            partitioned=True,
        )
        for variant, layout in (("general", "block"), ("auto", "cyclic")):
            label = f"spmd/{variant}/{layout}"
            assumed = variant != "general" and prog.min_trips_ok
            self._run_and_compare(
                prog,
                ref_env,
                verdict,
                label,
                {
                    "transform": "spmd",
                    "variant": variant,
                    "layout": layout,
                    "width": self.nproc,
                    "assume_min_trips": assumed,
                },
                partitioned=True,
                assumed=assumed,
            )
        # Eq. 1: per-lane useful iterations must match the layout's
        # assignment of outer iterations (hooked interpreter run).
        spmd_kwargs = {
            "transform": "spmd",
            "variant": "general",
            "layout": "block",
            "width": self.nproc,
        }
        flag = self._latched_flag(prog, spmd_kwargs)
        hook = ValidatingHook(self.nproc, flag=flag, marker="w")
        env = self._run_and_compare(
            prog,
            ref_env,
            verdict,
            "spmd/general/block/hooked",
            spmd_kwargs,
            partitioned=True,
            statement_hook=hook,
        )
        if env is not None:
            expected = predicted_lane_work(
                prog.trip_counts, self.nproc, "block"
            )
            actual = hook.lane_work.tolist()
            if actual != expected:
                verdict.divergences.append(
                    Divergence(
                        "invariant",
                        "spmd/general/block/hooked",
                        f"Eq. 1 violated: per-lane useful iterations "
                        f"{actual} != layout-assigned work {expected}",
                    )
                )
            for violation in hook.violations:
                verdict.divergences.append(
                    Divergence(
                        "invariant", "spmd/general/block/hooked", violation
                    )
                )
