"""Fuzzing campaign driver behind ``repro fuzz``.

Generates ``iterations`` programs from a seed, pushes each through the
differential oracle, optionally shrinks failures with the reducer, and
persists them to a corpus directory.  Everything is deterministic in
``(seed, iterations, nproc)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .corpus import CorpusEntry, save_entry
from .generator import GenConfig, ProgramGenerator
from .oracle import DifferentialOracle
from .reduce import shrink_program


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    iterations: int
    nproc: int
    checked: int = 0
    failures: list[CorpusEntry] = field(default_factory=list)
    leg_stats: dict[str, int] = field(default_factory=dict)
    feature_stats: dict[str, int] = field(default_factory=dict)
    saved_paths: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.checked}/{self.iterations} "
            f"programs checked on {self.nproc} PEs in {self.elapsed:.1f}s, "
            f"{len(self.failures)} failure(s)",
        ]
        legs = ", ".join(
            f"{label}={count}" for label, count in sorted(self.leg_stats.items())
        )
        if legs:
            lines.append(f"  legs run: {legs}")
        for entry in self.failures:
            program = entry.shrunk or entry.program
            lines.append(
                f"  [{entry.divergence.kind}] program {entry.index} on "
                f"{entry.divergence.config}: {entry.divergence.detail} "
                f"({program.line_count()} lines)"
            )
        return "\n".join(lines)


def run_fuzz(
    seed: int = 0,
    iterations: int = 100,
    nproc: int = 4,
    corpus_dir: str | None = None,
    shrink: bool = False,
    max_failures: int = 10,
    start: int = 0,
    config: GenConfig | None = None,
    progress=None,
    pmimd: bool = False,
    pmimd_chaos: bool = False,
) -> FuzzReport:
    """Run one campaign.

    Args:
        seed: Campaign seed (program ``i`` depends only on ``(seed, i)``).
        iterations: Number of programs to generate and check.
        nproc: Lockstep PE count for the SIMD/SPMD/MIMD legs.
        corpus_dir: Directory to persist failures into (None: no I/O).
        shrink: Run the delta-debugging reducer on each failure.
        max_failures: Stop the campaign after this many failing programs.
        start: First program index (for sharding long campaigns).
        config: Generator knobs override.
        progress: Optional callable ``(index, verdict) -> None``.
        pmimd: Run the process-parallel pmimd leg on every program
            (forks worker processes — slower, opt-in).
        pmimd_chaos: Run the pmimd leg under seeded worker-fault
            injection with a pmimd->mimd fallback chain.

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is the pass/fail verdict.
    """
    began = time.monotonic()
    generator = ProgramGenerator(seed, config)
    oracle = DifferentialOracle(
        nproc=nproc, pmimd=pmimd, pmimd_chaos=pmimd_chaos
    )
    report = FuzzReport(seed=seed, iterations=iterations, nproc=nproc)
    for program in generator.programs(iterations, start=start):
        verdict = oracle.check(program)
        report.checked += 1
        for feature in program.features:
            report.feature_stats[feature] = (
                report.feature_stats.get(feature, 0) + 1
            )
        for leg in verdict.legs:
            if leg.status == "ok":
                report.leg_stats[leg.label] = (
                    report.leg_stats.get(leg.label, 0) + 1
                )
        if progress is not None:
            progress(program.index, verdict)
        if verdict.ok:
            continue
        divergence = verdict.divergences[0]
        shrunk = None
        if shrink:
            kind, config_label = divergence.kind, divergence.config
            shrunk = shrink_program(
                program,
                lambda p: (
                    (d := oracle.check_leg(p, config_label)) is not None
                    and d.kind == kind
                ),
                engine=oracle.engine,
            )
            if shrunk is program:
                shrunk = None
        entry = CorpusEntry(
            seed=seed,
            index=program.index,
            program=program,
            divergence=divergence,
            shrunk=shrunk,
        )
        report.failures.append(entry)
        if corpus_dir is not None:
            report.saved_paths.append(str(save_entry(corpus_dir, entry)))
        if len(report.failures) >= max_failures:
            break
    report.elapsed = time.monotonic() - began
    return report
