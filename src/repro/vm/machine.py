"""The SIMD bytecode virtual machine.

Executes :class:`~repro.vm.isa.CodeObject`\\ s with exactly the
lockstep semantics of :class:`~repro.exec.simd.SIMDInterpreter` —
one program counter, a mask stack, per-PE replicated values, masked
stores, gather/scatter indirect addressing — and records into the
same :class:`~repro.exec.counters.ExecutionCounters`, so a VM run can
be priced by the same machine models.

The VM and the tree-walking interpreter are developed as independent
implementations of one semantics; the test suite runs them
differentially against each other.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exec.counters import ExecutionCounters
from ..exec.intrinsics import call_intrinsic, coerce, is_reduction_call
from ..exec.ops import apply_binop, apply_unop, op_event_kind
from ..exec.simd import SIMDInterpreter, _align_mask, _lane_mask
from ..exec.values import FArray
from ..lang import ast
from ..lang.errors import InterpreterError, MiniFError
from ..reliability import (
    Budget,
    DivergenceFault,
    MachineSnapshot,
    OutOfBoundsFault,
    TRACE_DEPTH,
    attach_snapshot,
    locate,
    render_mask,
    snapshot_env,
)
from .isa import CodeObject, Instr, Op


class SIMDVirtualMachine:
    """Executes SIMD bytecode on ``nproc`` lockstep lanes.

    Args:
        nproc: Processing-element count.
        externals: Mapping name -> callable with the interpreter
            external convention ``fn(vm, arg_exprs, args, env, mask)``.
        counters: Event accumulator (fresh when omitted).
        max_instructions: Runaway-loop guard (shorthand for a
            ``Budget(max_steps=...)``).
        budget: Execution guard; overrides ``max_instructions``.
        fault_plan: Deterministic fault injection
            (:class:`~repro.reliability.FaultPlan`).
    """

    def __init__(
        self,
        nproc: int,
        externals: dict | None = None,
        counters: ExecutionCounters | None = None,
        max_instructions: int = 20_000_000,
        budget: Budget | None = None,
        fault_plan=None,
    ):
        if nproc < 1:
            raise InterpreterError(f"need at least one PE, got {nproc}")
        self.nproc = nproc
        self.externals = externals or {}
        self.counters = counters if counters is not None else ExecutionCounters(nproc)
        self.max_instructions = max_instructions
        self.budget = budget if budget is not None else Budget(max_steps=max_instructions)
        self.fault_plan = fault_plan
        self.executed = 0
        self._meter = self.budget.meter()
        self._trace: deque = deque(maxlen=TRACE_DEPTH)
        self._env: dict = {}
        self._last_pc = 0
        self._last_loc = None
        self._mask_stack: list[tuple[np.ndarray, np.ndarray]] = []
        self._mask = np.ones(nproc, dtype=bool)
        # a shadow interpreter provides assign_to for external writebacks
        self._shadow = SIMDInterpreter(
            ast.SourceFile([ast.Routine("program", "__vm__", [], [])]),
            nproc,
            counters=self.counters,
        )

    def snapshot(self) -> MachineSnapshot:
        """The machine's state right now (for crash dumps)."""
        return MachineSnapshot(
            backend="vm",
            pc=self._last_pc,
            steps=self.executed,
            mask=render_mask(self._mask),
            mask_stack=[render_mask(outer) for outer, _ in self._mask_stack],
            env=snapshot_env(self._env),
            last_ops=list(self._trace),
            location=self._last_loc,
        )

    # -- mask helpers --------------------------------------------------------------

    @property
    def mask(self) -> np.ndarray:
        return self._mask

    @property
    def lanes_active(self) -> np.ndarray:
        return _lane_mask(self._mask, self.nproc)

    def _uniform_bool(self, value) -> bool:
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            lanes = self.lanes_active
            selected = value[lanes] if value.shape[0] == self.nproc else value.ravel()
            if selected.size == 0:
                return False
            first = selected.flat[0]
            if not np.all(selected == first):
                raise DivergenceFault(
                    "branch condition diverges across active PEs — the "
                    "single program counter cannot follow; use WHERE"
                )
            return bool(first)
        return bool(value)

    def _uniform_int(self, value, what: str) -> int:
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            lanes = self.lanes_active
            selected = value[lanes] if value.shape[0] == self.nproc else value.ravel()
            if selected.size == 0:
                raise InterpreterError(f"{what}: no active PEs")
            first = selected.flat[0]
            if not np.all(selected == first):
                raise DivergenceFault(f"{what} diverges across active PEs")
            return int(first)
        return int(value)

    @staticmethod
    def _layers_of(value) -> int:
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 2:
            return int(np.prod(value.shape[1:]))
        return 1

    # -- execution -------------------------------------------------------------------

    def run(self, code: CodeObject, bindings: dict | None = None) -> dict:
        """Execute a code object; returns the final environment.

        Every error raised mid-run is stamped with the current
        instruction's source location and a :meth:`snapshot` of the
        machine before propagating.
        """
        env: dict = dict(bindings or {})
        self._env = env
        self._meter = self.budget.meter()
        stack: list = []
        pc = 0
        instructions = code.instructions
        if self.fault_plan is not None:
            try:
                self.fault_plan.check_backend("vm")
            except MiniFError as error:
                raise attach_snapshot(error, self.snapshot())
            self._mask = self._mask & self.fault_plan.dropout_mask(
                self.nproc, "vm"
            )
        while pc < len(instructions):
            self.executed += 1
            self._last_pc = pc
            instr = instructions[pc]
            if instr.loc is not None:
                self._last_loc = instr.loc
            try:
                next_pc = self._step(instr, pc, env, stack)
            except MiniFError as error:
                locate(error, instr.loc)
                attach_snapshot(error, self.snapshot())
                raise
            if next_pc is None:  # HALT
                break
            pc = next_pc
        if self._mask_stack:
            # Translation invariant: every PUSH_MASK is matched by a
            # POP_MASK on all paths — an unbalanced stack means the
            # compiler emitted broken mask structure.
            error = InterpreterError(
                f"mask stack not drained at HALT: "
                f"{len(self._mask_stack)} WHERE scope(s) still open"
            )
            raise attach_snapshot(error, self.snapshot())
        return env

    def _step(self, instr: Instr, pc: int, env: dict, stack: list) -> int:
        """Execute one instruction; returns the next program counter."""
        self._meter.tick(instr.loc)
        if self.fault_plan is not None:
            self.fault_plan.raise_op_fault(self.executed, "vm")
        self._trace.append(
            {
                "pc": pc,
                "op": instr.op.name,
                "line": instr.loc.line if instr.loc is not None else None,
            }
        )
        op = instr.op
        if op is Op.PUSH_CONST:
            stack.append(instr.arg)
        elif op is Op.LOAD:
            if instr.arg not in env:
                raise InterpreterError(f"'{instr.arg}' used before assignment")
            stack.append(env[instr.arg])
        elif op is Op.STORE:
            self._store(env, instr.arg, stack.pop())
        elif op is Op.ALLOC:
            self._alloc(env, stack, instr.arg)
        elif op is Op.LOAD_INDEXED:
            stack.append(self._load_indexed(env, stack, instr.arg))
        elif op is Op.STORE_INDEXED:
            self._store_indexed(env, stack, instr.arg)
        elif op is Op.BINOP:
            right = stack.pop()
            left = stack.pop()
            result = apply_binop(instr.arg, left, right)
            self.counters.record(
                op_event_kind(instr.arg, result),
                width=self.nproc,
                layers=self._layers_of(result),
                mask=self.lanes_active,
            )
            stack.append(result)
        elif op is Op.UNOP:
            result = apply_unop(instr.arg, stack.pop())
            self.counters.record(
                op_event_kind(instr.arg, result),
                width=self.nproc,
                layers=self._layers_of(result),
                mask=self.lanes_active,
            )
            stack.append(result)
        elif op is Op.INTRINSIC:
            name, argc = instr.arg
            args = stack[-argc:] if argc else []
            del stack[len(stack) - argc:]
            if is_reduction_call(name, argc):
                self.counters.record(
                    "reduce", width=self.nproc, mask=self.lanes_active
                )
                stack.append(call_intrinsic(name, args, mask=self.lanes_active))
            else:
                self.counters.record(
                    "real_op", width=self.nproc, mask=self.lanes_active
                )
                stack.append(call_intrinsic(name, args))
        elif op is Op.IOTA:
            hi = self._uniform_int(stack.pop(), "range upper bound")
            lo = self._uniform_int(stack.pop(), "range lower bound")
            vec = np.arange(lo, hi + 1, dtype=np.int64)
            if vec.shape[0] != self.nproc:
                raise InterpreterError(
                    f"range vector [{lo} : {hi}] has {vec.shape[0]} "
                    f"elements, machine has {self.nproc} PEs"
                )
            stack.append(vec)
        elif op is Op.VECTOR:
            count = instr.arg
            items = [coerce(v) for v in stack[-count:]]
            del stack[len(stack) - count:]
            vec = np.array(items)
            if vec.shape[0] != self.nproc:
                raise InterpreterError(
                    f"vector literal has {vec.shape[0]} elements, "
                    f"machine has {self.nproc} PEs"
                )
            stack.append(vec)
        elif op is Op.CALL:
            self._call(env, stack, instr.arg)
        elif op is Op.PUSH_MASK:
            cond = stack.pop()
            self.counters.record("mask", width=self.nproc, mask=self.lanes_active)
            outer = self._mask
            self._mask_stack.append((outer, np.asarray(coerce(cond))))
            self._mask = self._combine(outer, cond)
            # Translation invariant: a WHERE can only narrow activity.
            if np.any(self.lanes_active & ~_lane_mask(outer, self.nproc)):
                raise InterpreterError(
                    "WHERE mask activates a lane outside the enclosing mask "
                    "(translation invariant violated)"
                )
        elif op is Op.ELSE_MASK:
            if not self._mask_stack:
                raise InterpreterError("ELSE_MASK with empty mask stack")
            outer, cond = self._mask_stack[-1]
            # the ELSEWHERE mask op runs under the *enclosing* mask
            self.counters.record(
                "mask", width=self.nproc, mask=_lane_mask(outer, self.nproc)
            )
            self._mask = self._combine(outer, apply_unop(".NOT.", cond))
        elif op is Op.POP_MASK:
            if not self._mask_stack:
                raise InterpreterError("POP_MASK with empty mask stack")
            self._mask, _ = self._mask_stack.pop()
        elif op is Op.JUMP:
            if instr.acu:
                self.counters.record("acu")
            return instr.arg
        elif op is Op.JUMP_IF_FALSE:
            self.counters.record("acu")
            if not self._uniform_bool(stack.pop()):
                return instr.arg
        elif op is Op.CTL_STORE:
            name, mode = instr.arg
            value = stack.pop()
            if mode == "int":
                env[name] = self._uniform_int(value, f"loop control '{name}'")
            else:
                env[name] = value
        elif op is Op.FOR:
            var, limit, stride_name, exit_index = instr.arg
            current = env[var]
            stride = env[stride_name]
            if stride == 0:
                raise InterpreterError("DO stride is zero")
            if (stride > 0 and current <= env[limit]) or (
                stride < 0 and current >= env[limit]
            ):
                self.counters.record("acu")
            else:
                return exit_index
        elif op is Op.FOR_INCR:
            var, stride_name = instr.arg
            env[var] = env[var] + env[stride_name]
        elif op is Op.NOP:
            pass
        elif op is Op.HALT:
            return None
        else:  # pragma: no cover - exhaustive
            raise InterpreterError(f"unknown opcode {op}")
        return pc + 1

    # -- helpers -------------------------------------------------------------------

    def _combine(self, outer, cond):
        cond = np.asarray(coerce(cond))
        if cond.ndim == 0:
            cond = np.full(self.nproc, bool(cond))
        if cond.dtype.kind != "b":
            raise InterpreterError("mask expression is not logical")
        base = np.asarray(outer)
        if base.ndim < cond.ndim:
            base = _align_mask(base, cond.ndim)
        elif cond.ndim < base.ndim:
            cond = _align_mask(cond, base.ndim)
        return base & cond

    def _sync_shadow(self) -> None:
        self._shadow._mask = self._mask

    def _store(self, env: dict, name: str, value) -> None:
        self._sync_shadow()
        self._shadow.assign_to(ast.Var(name), value, env)

    def _alloc(self, env: dict, stack: list, arg) -> None:
        name, rank, base = arg
        extents = [
            self._uniform_int(stack.pop(), f"extent of {name}") for _ in range(rank)
        ]
        extents.reverse()
        existing = env.get(name)
        if isinstance(existing, FArray):
            return
        array = FArray(name, tuple(extents), base)
        if isinstance(existing, np.ndarray):
            if existing.size != array.size:
                raise InterpreterError(
                    f"binding for '{name}' has {existing.size} elements, "
                    f"declared {array.size}"
                )
            array.data[...] = existing.reshape(array.shape)
        elif existing is not None:
            array.data[...] = existing
        env[name] = array

    def _decode_subscripts(self, stack: list, spec: str) -> list:
        """Pop subscript operands per the spec (rightmost dim on top)."""
        subs: list = []
        for code in reversed(spec):
            if code == "e":
                subs.append(("e", stack.pop()))
            elif code == "f":
                subs.append(("f", None))
            elif code == "l":
                subs.append(("l", stack.pop()))
            elif code == "u":
                subs.append(("u", stack.pop()))
            elif code == "b":
                hi = stack.pop()
                lo = stack.pop()
                subs.append(("b", (lo, hi)))
            else:  # pragma: no cover - compiler emits valid specs
                raise InterpreterError(f"bad subscript spec '{code}'")
        subs.reverse()
        resolved = []
        for code, value in subs:
            if code == "e":
                value = coerce(value)
                if isinstance(value, np.ndarray) and value.ndim >= 1:
                    resolved.append(value)
                else:
                    resolved.append(self._uniform_int(value, "subscript"))
            elif code == "f":
                resolved.append(slice(None, None))
            elif code == "l":
                resolved.append(
                    slice(self._uniform_int(value, "section bound") - 1, None)
                )
            elif code == "u":
                resolved.append(slice(0, self._uniform_int(value, "section bound")))
            else:
                lo, hi = value
                resolved.append(
                    slice(
                        self._uniform_int(lo, "section bound") - 1,
                        self._uniform_int(hi, "section bound"),
                    )
                )
        return resolved

    def _load_indexed(self, env: dict, stack: list, arg):
        name, spec = arg
        subs = self._decode_subscripts(stack, spec)
        array = env.get(name)
        if isinstance(array, FArray):
            if any(isinstance(s, np.ndarray) for s in subs):
                return self._gather(array, subs)
            # No active lane consumes this load; clamp instead of trap.
            index = array.np_index(subs, clamp=not self.lanes_active.any())
            result = array.data[index]
            return result.copy() if isinstance(result, np.ndarray) else result
        if isinstance(array, np.ndarray) and array.ndim == 1 and len(subs) == 1:
            sub = subs[0]
            lanes = self.lanes_active
            if isinstance(sub, slice):
                return array[sub].copy()
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(self.nproc, int(arr))
            if lanes.any():
                active = arr[lanes]
                if np.any((active < 1) | (active > array.shape[0])):
                    raise OutOfBoundsFault(f"subscript out of bounds for '{name}'")
            clamped = np.clip(arr, 1, array.shape[0])
            self.counters.record("gather", width=self.nproc, mask=lanes)
            return array[clamped - 1]
        raise InterpreterError(f"'{name}' is not an array")

    def _gather(self, array: FArray, subs: list):
        lanes = self.lanes_active
        index = []
        for dim, sub in enumerate(subs):
            if isinstance(sub, slice):
                raise InterpreterError(
                    f"cannot mix sections and vector subscripts on '{array.name}'"
                )
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(self.nproc, int(arr))
            if arr.shape[0] != self.nproc:
                raise InterpreterError(
                    f"vector subscript of '{array.name}' has length "
                    f"{arr.shape[0]}, expected {self.nproc}"
                )
            if lanes.any():
                array.check_subscript(dim, arr[lanes])
            index.append(np.clip(arr, 1, max(1, array.shape[dim])) - 1)
        self.counters.record("gather", width=self.nproc, mask=lanes)
        return array.data[tuple(index)]

    def _store_indexed(self, env: dict, stack: list, arg) -> None:
        name, spec = arg
        subs = self._decode_subscripts(stack, spec)
        value = stack.pop()
        array = env.get(name)
        if not isinstance(array, FArray):
            raise InterpreterError(f"'{name}' is not an array")
        if any(isinstance(s, np.ndarray) for s in subs):
            self._scatter(array, subs, value)
            return
        # Issued with no active lane: the store writes nothing, so the
        # (possibly garbage) address must not trap — clamp, don't check.
        index = array.np_index(subs, clamp=not self.lanes_active.any())
        region = array.data[index]
        layers = self._layers_of(region)
        self.counters.record(
            "store", width=self.nproc, layers=layers, mask=self.lanes_active
        )
        if not (isinstance(region, np.ndarray) and region.ndim >= 1):
            # All lanes address the same element.  A per-lane value is
            # legal lockstep only when the active lanes agree (they all
            # write the same thing); otherwise the store is a race.
            varr = np.asarray(value)
            if varr.ndim >= 1:
                if varr.ndim != 1 or varr.shape[0] != self.nproc:
                    raise InterpreterError(
                        f"cannot store an array value into element of '{name}'"
                    )
                lanes = _lane_mask(self._mask, self.nproc)
                active = varr[lanes] if lanes.any() else varr
                if not np.all(active == active.flat[0]):
                    # The static R001 lint rule catches this at compile
                    # time; classify as a divergence fault either way.
                    raise DivergenceFault(
                        f"divergent lanes race on scalar element store to "
                        f"'{name}'"
                    )
                value = active.flat[0].item()
        if bool(np.all(self._mask)):
            array.data[index] = coerce(value)
            return
        if isinstance(region, np.ndarray) and region.ndim >= 1:
            if region.shape[0] != self.nproc:
                raise InterpreterError(
                    f"masked section assignment to '{name}' needs the "
                    f"leading extent to be {self.nproc}"
                )
            mask = _align_mask(self._mask, region.ndim)
            array.data[index] = np.where(mask, coerce(value), region)
            return
        if self._uniform_bool(self._mask):
            array.data[index] = coerce(value)

    def _scatter(self, array: FArray, subs: list, value) -> None:
        lanes = self.lanes_active
        index = []
        for dim, sub in enumerate(subs):
            if isinstance(sub, slice):
                raise InterpreterError(
                    f"cannot mix sections and vector subscripts on '{array.name}'"
                )
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(self.nproc, int(arr))
            if lanes.any():
                array.check_subscript(dim, arr[lanes])
            index.append(arr[lanes] - 1)
        self.counters.record("scatter", width=self.nproc, mask=lanes)
        new = np.asarray(coerce(value))
        if new.ndim == 0:
            new = np.full(self.nproc, new.item())
        array.data[tuple(index)] = new[lanes]

    def _call(self, env: dict, stack: list, arg) -> None:
        name, arg_exprs = arg
        external = self.externals.get(name)
        if external is None:
            raise InterpreterError(f"CALL to unknown external '{name}'")
        values = stack[-len(arg_exprs):] if arg_exprs else []
        del stack[len(stack) - len(arg_exprs):]
        # Var arguments were compiled as lazy placeholders.
        resolved = []
        for expr, value in zip(arg_exprs, values):
            if isinstance(expr, ast.Var):
                resolved.append(env.get(expr.name))
            else:
                resolved.append(value)
        layers = max((self._layers_of(v) for v in resolved if v is not None), default=1)
        self.counters.record_call(name, layers=layers, mask=self.lanes_active)
        self._sync_shadow()
        external(self._shadow, list(arg_exprs), resolved, env, self._mask)


def run_bytecode(
    source: ast.SourceFile,
    nproc: int,
    bindings: dict | None = None,
    externals: dict | None = None,
) -> tuple[dict, ExecutionCounters]:
    """Compile the main program and run it on the VM."""
    from .compiler import compile_program

    code = compile_program(source)
    vm = SIMDVirtualMachine(nproc, externals)
    env = vm.run(code, bindings=bindings)
    return env, vm.counters
