"""The SIMD bytecode virtual machine.

Executes :class:`~repro.vm.isa.CodeObject`\\ s with exactly the
lockstep semantics of :class:`~repro.exec.simd.SIMDInterpreter` —
one program counter, a mask stack, per-PE replicated values, masked
stores, gather/scatter indirect addressing — and records into the
same :class:`~repro.exec.counters.ExecutionCounters`, so a VM run can
be priced by the same machine models.

The VM and the tree-walking interpreter are developed as independent
implementations of one semantics; the test suite runs them
differentially against each other.

Execution model (see DESIGN.md §10):

* **threaded dispatch** — a per-code handler table is bound when a
  code object is loaded for a run, so the hot loop is one indexed
  call per instruction instead of an ``if/elif`` opcode scan;
* **superinstructions** — unless ``fuse=False`` (or a fault plan
  demands exact per-instruction stepping), straight-line runs are
  fused by :func:`repro.vm.fuse.fuse_code` and executed in a tight
  loop with one budget tick, one trace extension and one batched
  counter flush per run (the activity mask is constant inside a run
  by construction);
* **mask pool** — WHERE/ELSEWHERE mask narrowing writes into
  preallocated per-depth buffers instead of allocating, and the lane
  mask / all-active / any-active reductions are cached per mask
  transition instead of being recomputed per instruction.
"""

from __future__ import annotations

import copy
from collections import deque

import numpy as np

from ..exec.counters import ExecutionCounters
from ..exec.intrinsics import call_intrinsic, coerce, is_reduction_call
from ..exec.ops import apply_binop, apply_unop, op_event_kind
from ..exec.simd import SIMDInterpreter, _align_mask, _lane_mask
from ..exec.values import FArray
from ..lang import ast
from ..lang.errors import InterpreterError, MiniFError
from ..reliability import (
    Budget,
    DivergenceFault,
    MachineSnapshot,
    OutOfBoundsFault,
    TRACE_DEPTH,
    attach_snapshot,
    locate,
    render_mask,
    snapshot_env,
)
from ..reliability.checkpoint import Checkpoint
from .fuse import (
    S_ALLOC,
    S_BINOP,
    S_CTL_STORE,
    S_FOR_INCR,
    S_INTRINSIC_ELEM,
    S_INTRINSIC_REDUCE,
    S_IOTA,
    S_LOAD,
    S_LOAD_INDEXED,
    S_PUSH_CONST,
    S_STORE,
    S_STORE_INDEXED,
    S_UNOP,
    S_VECTOR,
    fuse_code,
)
from .isa import CodeObject, Instr, Op

#: Sentinel next-pc returned by HALT (terminates the dispatch loop).
_HALT_PC = -1


class SIMDVirtualMachine:
    """Executes SIMD bytecode on ``nproc`` lockstep lanes.

    Args:
        nproc: Processing-element count.
        externals: Mapping name -> callable with the interpreter
            external convention ``fn(vm, arg_exprs, args, env, mask)``.
        counters: Event accumulator (fresh when omitted).
        max_instructions: Runaway-loop guard (shorthand for a
            ``Budget(max_steps=...)``).
        budget: Execution guard; overrides ``max_instructions``.
        fault_plan: Deterministic fault injection
            (:class:`~repro.reliability.FaultPlan`).  Forces exact
            per-instruction stepping (no fusion) so op faults fire at
            precisely the planned step.
        fuse: Execute superinstruction-fused code (the fast path).
            ``False`` retires one instruction per dispatch with exact
            per-instruction budget metering — the reference mode the
            fuzz oracle runs differentially against the fused mode.
        checkpoint_every: Capture a restorable
            :class:`~repro.reliability.checkpoint.Checkpoint` every
            this many executed instructions (checked between dispatch
            iterations, so fused runs stretch the interval by at most
            ``MAX_FUSE_LEN - 1`` steps).  ``None`` disables capture.
        checkpoint_sink: Callable receiving each captured checkpoint
            (e.g. ``CheckpointStore.save`` bound to a key).
    """

    def __init__(
        self,
        nproc: int,
        externals: dict | None = None,
        counters: ExecutionCounters | None = None,
        max_instructions: int = 20_000_000,
        budget: Budget | None = None,
        fault_plan=None,
        fuse: bool = True,
        checkpoint_every: int | None = None,
        checkpoint_sink=None,
    ):
        if nproc < 1:
            raise InterpreterError(f"need at least one PE, got {nproc}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise InterpreterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.nproc = nproc
        self.externals = externals or {}
        self.counters = counters if counters is not None else ExecutionCounters(nproc)
        self.max_instructions = max_instructions
        self.budget = budget if budget is not None else Budget(max_steps=max_instructions)
        self.fault_plan = fault_plan
        self.fuse = fuse
        self.checkpoint_every = checkpoint_every
        self.checkpoint_sink = checkpoint_sink
        self.executed = 0
        self._meter = self.budget.meter()
        self._trace: deque = deque(maxlen=TRACE_DEPTH)
        self._env: dict = {}
        self._last_pc = 0
        self._last_loc = None
        self._mask_stack: list[tuple[np.ndarray, np.ndarray]] = []
        self._mask_pool: dict = {}
        self._set_mask(np.ones(nproc, dtype=bool))
        # a shadow interpreter provides assign_to for external writebacks
        self._shadow = SIMDInterpreter(
            ast.SourceFile([ast.Routine("program", "__vm__", [], [])]),
            nproc,
            counters=self.counters,
        )
        self._dispatch = {
            Op.PUSH_CONST: self._op_push_const,
            Op.LOAD: self._op_load,
            Op.STORE: self._op_store,
            Op.ALLOC: self._op_alloc,
            Op.LOAD_INDEXED: self._op_load_indexed,
            Op.STORE_INDEXED: self._op_store_indexed,
            Op.BINOP: self._op_binop,
            Op.UNOP: self._op_unop,
            Op.INTRINSIC: self._op_intrinsic,
            Op.IOTA: self._op_iota,
            Op.VECTOR: self._op_vector,
            Op.CALL: self._op_call,
            Op.PUSH_MASK: self._op_push_mask,
            Op.ELSE_MASK: self._op_else_mask,
            Op.POP_MASK: self._op_pop_mask,
            Op.JUMP: self._op_jump,
            Op.JUMP_IF_FALSE: self._op_jump_if_false,
            Op.CTL_STORE: self._op_ctl_store,
            Op.FOR: self._op_for,
            Op.FOR_INCR: self._op_for_incr,
            Op.NOP: self._op_nop,
            Op.HALT: self._op_halt,
            Op.FUSED: self._op_fused,
        }

    @classmethod
    def from_config(cls, config) -> "SIMDVirtualMachine":
        """Construct from a :class:`~repro.runtime.BackendConfig`."""
        kwargs = dict(
            externals=config.externals,
            counters=config.counters,
            budget=config.budget,
            fault_plan=config.fault_plan,
            fuse=config.vm_fuse,
            checkpoint_every=config.checkpoint_every,
        )
        if config.max_instructions is not None:
            kwargs["max_instructions"] = config.max_instructions
        return cls(config.nproc, **kwargs)

    def snapshot(self) -> MachineSnapshot:
        """The machine's state right now (for crash dumps)."""
        self._flush_lane_epoch()
        return MachineSnapshot(
            backend="vm",
            pc=self._last_pc,
            steps=self.executed,
            mask=render_mask(self._mask),
            mask_stack=[render_mask(outer) for outer, _ in self._mask_stack],
            env=snapshot_env(self._env),
            last_ops=[
                {"pc": pc, "op": op, "line": line} for pc, op, line in self._trace
            ],
            location=self._last_loc,
        )

    # -- mask helpers --------------------------------------------------------------

    @property
    def mask(self) -> np.ndarray:
        return self._mask_value

    @property
    def lanes_active(self) -> np.ndarray:
        return self._lanes

    @property
    def _mask(self) -> np.ndarray:
        return self._mask_value

    @_mask.setter
    def _mask(self, value) -> None:
        # Keep the cached lane reductions coherent for any direct poke.
        self._set_mask(np.asarray(value))

    # Deferred per-lane accounting: all vector events recorded under one
    # mask epoch accumulate their layer counts here and are applied to
    # ``counters.lane_active_steps`` in a single update at the next mask
    # transition (or at run exit / snapshot).  Class-level defaults so
    # the first ``_set_mask`` during __init__ sees them.
    _epoch_layers = 0
    _active_cached: int | None = None

    def _set_mask(self, mask: np.ndarray) -> None:
        """Install a new activity mask and refresh the cached reductions."""
        if self._epoch_layers:
            self._flush_lane_epoch()
        self._mask_value = mask
        if mask.ndim == 1:
            lanes = mask
        else:
            lanes = mask.any(axis=tuple(range(1, mask.ndim)))
        self._lanes = lanes
        self._all_active = bool(mask.all())
        self._any_active = bool(lanes.any())
        self._active_cached = None

    def _active(self) -> int:
        """Active-lane count of the current mask epoch (cached)."""
        count = self._active_cached
        if count is None:
            count = self._active_cached = int(np.count_nonzero(self._lanes))
        return count

    def _flush_lane_epoch(self) -> None:
        """Apply the epoch's deferred per-lane activity to the counters.

        Must run before ``self._lanes`` is rebound or its pooled buffer
        reused — i.e. at every mask transition and at run exit.
        """
        layers = self._epoch_layers
        if layers:
            self._epoch_layers = 0
            self.counters.add_lane_steps(self._lanes, layers)

    def _record(self, kind: str, layers: int = 1) -> None:
        """Record one vector event under the current mask epoch."""
        self._epoch_layers += self.counters.record(
            kind,
            width=self.nproc,
            layers=layers,
            active=self._active(),
            defer_lanes=True,
        )

    def _buffer(self, key, shape) -> np.ndarray:
        """A reusable boolean buffer from the per-depth mask pool."""
        buf = self._mask_pool.get(key)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=bool)
            self._mask_pool[key] = buf
        return buf

    def _narrow(self, outer, cond: np.ndarray, depth: int, negate: bool) -> np.ndarray:
        """``outer ∧ cond`` (or ``outer ∧ ¬cond``) into a pooled buffer."""
        if cond.ndim == 0:
            cond = np.full(self.nproc, bool(cond))
        if cond.dtype.kind != "b":
            raise InterpreterError("mask expression is not logical")
        base = np.asarray(outer)
        if base.ndim < cond.ndim:
            base = _align_mask(base, cond.ndim)
        elif cond.ndim < base.ndim:
            cond = _align_mask(cond, base.ndim)
        if negate:
            nbuf = self._buffer((depth, 2), cond.shape)
            np.logical_not(cond, out=nbuf)
            cond = nbuf
        shape = np.broadcast_shapes(base.shape, cond.shape)
        buf = self._buffer((depth, 1 if negate else 0), shape)
        np.logical_and(base, cond, out=buf)
        return buf

    def _uniform_bool(self, value) -> bool:
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            lanes = self._lanes
            selected = value[lanes] if value.shape[0] == self.nproc else value.ravel()
            if selected.size == 0:
                return False
            first = selected.flat[0]
            if not np.all(selected == first):
                raise DivergenceFault(
                    "branch condition diverges across active PEs — the "
                    "single program counter cannot follow; use WHERE"
                )
            return bool(first)
        return bool(value)

    def _uniform_int(self, value, what: str) -> int:
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            lanes = self._lanes
            selected = value[lanes] if value.shape[0] == self.nproc else value.ravel()
            if selected.size == 0:
                raise InterpreterError(f"{what}: no active PEs")
            first = selected.flat[0]
            if not np.all(selected == first):
                raise DivergenceFault(f"{what} diverges across active PEs")
            return int(first)
        return int(value)

    @staticmethod
    def _layers_of(value) -> int:
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 2:
            layers = 1
            for extent in value.shape[1:]:
                layers *= extent
            return layers
        return 1

    # -- execution -------------------------------------------------------------------

    def run(
        self,
        code: CodeObject,
        bindings: dict | None = None,
        resume_from: Checkpoint | None = None,
    ) -> dict:
        """Execute a code object; returns the final environment.

        Every error raised mid-run is stamped with the current
        instruction's source location and a :meth:`snapshot` of the
        machine before propagating.

        With ``resume_from``, ``bindings`` are ignored and execution
        continues from the checkpoint's state; the resumed run's final
        environment, counters and crash dumps are bit-identical to the
        uninterrupted run's (the checkpoint itself is not mutated, so
        it may be resumed again).  Wall-clock deadlines restart; the
        consumed *step* budget resumes exactly.
        """
        env: dict = dict(bindings or {})
        self._env = env
        self._meter = self.budget.meter()
        stack: list = []
        if self.fault_plan is not None:
            try:
                self.fault_plan.check_backend("vm")
            except MiniFError as error:
                raise attach_snapshot(error, self.snapshot())
            self._set_mask(self._mask & self.fault_plan.dropout_mask(self.nproc, "vm"))
            run_code = code  # op faults need exact per-instruction stepping
            fused = False
        elif self.fuse:
            run_code = fuse_code(code)
            fused = True
        else:
            run_code = code
            fused = False
        instructions = run_code.instructions
        dispatch = self._dispatch
        handlers = [dispatch.get(i.op, self._op_unknown) for i in instructions]
        size = len(instructions)
        pc = 0
        if resume_from is not None:
            pc, env, stack = self._restore(resume_from, fused)
            self._env = env
        every = self.checkpoint_every
        sink = self.checkpoint_sink
        next_at = None
        if every and sink is not None:
            next_at = (self.executed // every + 1) * every
        try:
            while 0 <= pc < size:
                if next_at is not None and self.executed >= next_at:
                    sink(self._capture(pc, env, stack, fused))
                    next_at = (self.executed // every + 1) * every
                self._last_pc = pc
                instr = instructions[pc]
                if instr.loc is not None:
                    self._last_loc = instr.loc
                try:
                    pc = handlers[pc](instr, pc, env, stack)
                except MiniFError as error:
                    locate(error, instr.loc)
                    attach_snapshot(error, self.snapshot())
                    raise
        finally:
            # Deferred per-lane accounting settles on every exit path
            # (snapshot() also flushes, so crash dumps are exact).
            self._flush_lane_epoch()
        if self._mask_stack:
            # Translation invariant: every PUSH_MASK is matched by a
            # POP_MASK on all paths — an unbalanced stack means the
            # compiler emitted broken mask structure.
            error = InterpreterError(
                f"mask stack not drained at HALT: "
                f"{len(self._mask_stack)} WHERE scope(s) still open"
            )
            raise attach_snapshot(error, self.snapshot())
        return env

    # -- checkpoint capture / resume -----------------------------------------------

    def _capture(self, pc: int, env: dict, stack: list, fused: bool) -> Checkpoint:
        """Full restorable state at an instruction boundary.

        Runs between dispatch iterations only, so a capture can never
        land inside a fused superinstruction — the restored machine is
        always in a state the unfused VM could also have reached.
        """
        self._flush_lane_epoch()
        return Checkpoint(
            backend="vm",
            step=self.executed,
            pc=pc,
            env=env,
            stack=list(stack),
            mask=self._mask_value,
            mask_stack=list(self._mask_stack),
            counters=self.counters.state_dict(),
            meter_steps=self._meter.steps,
            trace=list(self._trace),
            last_pc=self._last_pc,
            last_loc=self._last_loc,
            nproc=self.nproc,
            meta={"fuse": fused},
        ).detach()

    def _restore(self, ckpt: Checkpoint, fused: bool):
        """Install a checkpoint's state; returns ``(pc, env, stack)``.

        The checkpoint's mutable state is deep-copied in, so the same
        checkpoint object can seed any number of resumed runs.
        """
        if ckpt.backend != "vm":
            raise InterpreterError(
                f"cannot resume a {ckpt.backend!r} checkpoint on the vm backend"
            )
        if ckpt.nproc != self.nproc:
            raise InterpreterError(
                f"checkpoint was captured on {ckpt.nproc} PEs, "
                f"this machine has {self.nproc}"
            )
        if ckpt.meta.get("fuse", fused) != fused:
            # pc indexes fused and unfused code identically *between*
            # runs of straight-line code, but a mid-padding pc from one
            # mode is a NOP in the other — refuse the silent skip.
            raise InterpreterError(
                "checkpoint was captured with "
                f"fuse={ckpt.meta.get('fuse')}, this run has fuse={fused}"
            )
        env, stack, mask, mask_stack = copy.deepcopy(
            (ckpt.env, ckpt.stack, ckpt.mask, ckpt.mask_stack)
        )
        self._epoch_layers = 0
        self._mask_stack = list(mask_stack)
        self._set_mask(np.asarray(mask))
        self.executed = ckpt.step
        self.counters.load_state(ckpt.counters)
        self._meter.steps = ckpt.meter_steps
        self._trace = deque(ckpt.trace, maxlen=TRACE_DEPTH)
        self._last_pc = ckpt.last_pc
        self._last_loc = ckpt.last_loc
        return ckpt.pc, env, stack

    def _tick1(self, instr: Instr, pc: int) -> None:
        """Per-instruction accounting for unfused dispatch."""
        self.executed += 1
        self._meter.tick(instr.loc)
        if self.fault_plan is not None:
            self.fault_plan.raise_op_fault(self.executed, "vm")
        loc = instr.loc
        self._trace.append((pc, instr.op.name, loc.line if loc is not None else None))

    def _account(self, kind: str, layers: int, events) -> None:
        """Record one event now, or defer it to a fused run's batch."""
        if events is None:
            self._record(kind, layers)
        else:
            events.append((kind, layers))

    # -- single-instruction handlers ---------------------------------------------

    def _op_unknown(self, instr, pc, env, stack):  # pragma: no cover - exhaustive
        raise InterpreterError(f"unknown opcode {instr.op}")

    def _op_push_const(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        stack.append(instr.arg)
        return pc + 1

    def _op_load(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        name = instr.arg
        try:
            stack.append(env[name])
        except KeyError:
            raise InterpreterError(f"'{name}' used before assignment") from None
        return pc + 1

    def _op_store(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        self._store(env, instr.arg, stack.pop(), None)
        return pc + 1

    def _op_alloc(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        self._alloc(env, stack, instr.arg)
        return pc + 1

    def _op_load_indexed(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        stack.append(self._load_indexed(env, stack, instr.arg, None))
        return pc + 1

    def _op_store_indexed(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        self._store_indexed(env, stack, instr.arg, None)
        return pc + 1

    def _op_binop(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        right = stack.pop()
        left = stack.pop()
        result = apply_binop(instr.arg, left, right)
        self._record(op_event_kind(instr.arg, result), self._layers_of(result))
        stack.append(result)
        return pc + 1

    def _op_unop(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        result = apply_unop(instr.arg, stack.pop())
        self._record(op_event_kind(instr.arg, result), self._layers_of(result))
        stack.append(result)
        return pc + 1

    def _op_intrinsic(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        name, argc = instr.arg
        args = stack[-argc:] if argc else []
        del stack[len(stack) - argc:]
        if is_reduction_call(name, argc):
            self._record("reduce")
            stack.append(call_intrinsic(name, args, mask=self._lanes))
        else:
            self._record("real_op")
            stack.append(call_intrinsic(name, args))
        return pc + 1

    def _op_iota(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        stack.append(self._iota(stack))
        return pc + 1

    def _iota(self, stack):
        hi = self._uniform_int(stack.pop(), "range upper bound")
        lo = self._uniform_int(stack.pop(), "range lower bound")
        vec = np.arange(lo, hi + 1, dtype=np.int64)
        if vec.shape[0] != self.nproc:
            raise InterpreterError(
                f"range vector [{lo} : {hi}] has {vec.shape[0]} "
                f"elements, machine has {self.nproc} PEs"
            )
        return vec

    def _op_vector(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        stack.append(self._vector(stack, instr.arg))
        return pc + 1

    def _vector(self, stack, count: int):
        items = [coerce(v) for v in stack[-count:]]
        del stack[len(stack) - count:]
        vec = np.array(items)
        if vec.shape[0] != self.nproc:
            raise InterpreterError(
                f"vector literal has {vec.shape[0]} elements, "
                f"machine has {self.nproc} PEs"
            )
        return vec

    def _op_call(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        self._call(env, stack, instr.arg)
        return pc + 1

    def _op_push_mask(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        cond = stack.pop()
        # Recorded under the *enclosing* mask; the deferred epoch is
        # flushed by the _set_mask below before the mask changes.
        self._record("mask")
        outer = self._mask
        cond_arr = np.asarray(coerce(cond))
        self._mask_stack.append((outer, cond_arr))
        self._set_mask(np.asarray(self._combine(outer, cond_arr)))
        # Translation invariant: a WHERE can only narrow activity.
        if self._any_active and np.any(self._lanes & ~_lane_mask(outer, self.nproc)):
            raise InterpreterError(
                "WHERE mask activates a lane outside the enclosing mask "
                "(translation invariant violated)"
            )
        return pc + 1

    def _combine(self, outer, cond):
        """``outer ∧ cond`` for a freshly pushed WHERE scope (pooled)."""
        return self._narrow(
            outer, np.asarray(coerce(cond)), len(self._mask_stack) - 1, negate=False
        )

    def _op_else_mask(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        if not self._mask_stack:
            raise InterpreterError("ELSE_MASK with empty mask stack")
        outer, cond = self._mask_stack[-1]
        # the ELSEWHERE mask op runs under the *enclosing* mask
        self.counters.record(
            "mask", width=self.nproc, mask=_lane_mask(outer, self.nproc)
        )
        self._set_mask(
            self._narrow(outer, cond, len(self._mask_stack) - 1, negate=True)
        )
        return pc + 1

    def _op_pop_mask(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        if not self._mask_stack:
            raise InterpreterError("POP_MASK with empty mask stack")
        outer, _ = self._mask_stack.pop()
        self._set_mask(outer)
        return pc + 1

    def _op_jump(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        if instr.acu:
            self.counters.record("acu")
        return instr.arg

    def _op_jump_if_false(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        self.counters.record("acu")
        if not self._uniform_bool(stack.pop()):
            return instr.arg
        return pc + 1

    def _op_ctl_store(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        name, mode = instr.arg
        value = stack.pop()
        if mode == "int":
            env[name] = self._uniform_int(value, f"loop control '{name}'")
        else:
            env[name] = value
        return pc + 1

    def _op_for(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        var, limit, stride_name, exit_index = instr.arg
        current = env[var]
        stride = env[stride_name]
        if stride == 0:
            raise InterpreterError("DO stride is zero")
        if (stride > 0 and current <= env[limit]) or (
            stride < 0 and current >= env[limit]
        ):
            self.counters.record("acu")
            return pc + 1
        return exit_index

    def _op_for_incr(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        var, stride_name = instr.arg
        env[var] = env[var] + env[stride_name]
        return pc + 1

    def _op_nop(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        return pc + 1

    def _op_halt(self, instr, pc, env, stack):
        self._tick1(instr, pc)
        return _HALT_PC

    # -- superinstruction execution ------------------------------------------------

    def _op_fused(self, instr, pc, env, stack):
        """Execute one fused straight-line run.

        The activity mask is constant inside the run (mask opcodes
        terminate runs at fuse time), so counter events are collected
        as ``(kind, layers)`` pairs and flushed in one
        :meth:`~repro.exec.counters.ExecutionCounters.record_block`,
        and the budget meter is ticked once for the whole run after it
        retires (slack contract in :mod:`repro.reliability.budget`).
        """
        run = instr.arg
        events: list = []
        append = stack.append
        pop = stack.pop
        index = 0
        try:
            for code, a, comp in run.steps:
                if code == S_LOAD:
                    try:
                        append(env[a])
                    except KeyError:
                        raise InterpreterError(
                            f"'{a}' used before assignment"
                        ) from None
                elif code == S_BINOP:
                    right = pop()
                    left = pop()
                    result = apply_binop(a, left, right)
                    events.append(
                        (op_event_kind(a, result), self._layers_of(result))
                    )
                    append(result)
                elif code == S_PUSH_CONST:
                    append(a)
                elif code == S_STORE:
                    self._store(env, a, pop(), events)
                elif code == S_LOAD_INDEXED:
                    append(self._load_indexed(env, stack, a, events))
                elif code == S_STORE_INDEXED:
                    self._store_indexed(env, stack, a, events)
                elif code == S_UNOP:
                    result = apply_unop(a, pop())
                    events.append(
                        (op_event_kind(a, result), self._layers_of(result))
                    )
                    append(result)
                elif code == S_INTRINSIC_REDUCE:
                    name, argc = a
                    args = stack[-argc:] if argc else []
                    if argc:
                        del stack[len(stack) - argc:]
                    events.append(("reduce", 1))
                    append(call_intrinsic(name, args, mask=self._lanes))
                elif code == S_INTRINSIC_ELEM:
                    name, argc = a
                    args = stack[-argc:] if argc else []
                    if argc:
                        del stack[len(stack) - argc:]
                    events.append(("real_op", 1))
                    append(call_intrinsic(name, args))
                elif code == S_CTL_STORE:
                    name, mode = a
                    value = pop()
                    if mode == "int":
                        env[name] = self._uniform_int(
                            value, f"loop control '{name}'"
                        )
                    else:
                        env[name] = value
                elif code == S_FOR_INCR:
                    var, stride_name = a
                    env[var] = env[var] + env[stride_name]
                elif code == S_IOTA:
                    append(self._iota(stack))
                elif code == S_VECTOR:
                    append(self._vector(stack, a))
                elif code == S_ALLOC:
                    self._alloc(env, stack, a)
                # else: S_NOP — label placeholder, nothing to do
                index += 1
        except MiniFError as error:
            self._fused_fault(run, pc, index, events, error)
            raise
        count = run.count
        self.executed += count
        self._trace.extend(run.trace)
        if events:
            self._epoch_layers += self.counters.record_block(
                events, width=self.nproc, active=self._active(), defer_lanes=True
            )
        if run.last_loc is not None:
            self._last_loc = run.last_loc
        self._last_pc = pc + count - 1
        self._meter.tick_block(count, run.last_loc)
        return pc + count

    def _fused_fault(self, run, pc: int, index: int, events: list, error) -> None:
        """Exact crash accounting when a component of a fused run faults.

        Retired steps, the trace ring and the collected counter events
        are flushed up to and including the faulting component, and the
        snapshot is pinned to the component's original pc (fusion
        preserves instruction indices), so crash dumps are identical to
        what unfused execution would have produced.
        """
        count = min(index + 1, run.count)
        self.executed += count
        self._meter.add_silent(count)
        self._trace.extend(run.trace[:count])
        if events:
            self._epoch_layers += self.counters.record_block(
                events, width=self.nproc, active=self._active(), defer_lanes=True
            )
        self._last_pc = pc + count - 1
        for comp in reversed(run.instrs[:count]):
            if comp.loc is not None:
                self._last_loc = comp.loc
                break
        locate(error, run.instrs[count - 1].loc)
        attach_snapshot(error, self.snapshot())

    # -- helpers -------------------------------------------------------------------

    def _sync_shadow(self) -> None:
        self._shadow._mask = self._mask

    def _store(self, env: dict, name: str, value, events) -> None:
        """Masked store of ``value`` into variable ``name``.

        Semantics mirror the tree-walking interpreter's
        ``_assign_var`` exactly (the differential suite holds the two
        to the same environments and counters); the VM keeps its own
        copy to avoid building an AST node per store on the hot path.
        """
        value = coerce(value)
        existing = env.get(name)
        nproc = self.nproc
        if isinstance(existing, FArray):
            layers = max(1, existing.size // max(1, nproc))
            self._account("store", layers, events)
            if self._all_active:
                existing.data[...] = value
                return
            if existing.shape[0] != nproc:
                raise InterpreterError(
                    f"masked whole-array assignment to '{name}' needs a "
                    f"leading dimension of {nproc}"
                )
            mask = _align_mask(self._mask, existing.data.ndim)
            existing.data[...] = np.where(mask, value, existing.data)
            return
        self._account("store", self._layers_of(value), events)
        if self._all_active:
            env[name] = value
            return
        if existing is None:
            # First write happens under a partial mask: the masked-out
            # lanes' memory is simply uninitialized on a real machine;
            # model it as zero (of the stored value's type).
            sample = np.asarray(value)
            existing = np.zeros(nproc, dtype=sample.dtype)
        old = np.asarray(coerce(existing))
        new = np.asarray(value)
        if old.ndim == 0:
            old = np.full(nproc, old.item())
        if new.ndim > old.ndim:
            old = np.broadcast_to(old[..., None], new.shape).copy()
        mask = _align_mask(_lane_mask(self._mask, nproc), max(old.ndim, new.ndim))
        env[name] = np.where(mask, new, old)

    def _alloc(self, env: dict, stack: list, arg) -> None:
        name, rank, base = arg
        extents = [
            self._uniform_int(stack.pop(), f"extent of {name}") for _ in range(rank)
        ]
        extents.reverse()
        existing = env.get(name)
        if isinstance(existing, FArray):
            return
        # A binding overwrites every element, so skip the zero fill —
        # large pairlist bindings would otherwise be touched twice.
        array = FArray(name, tuple(extents), base, fill=existing is None)
        if isinstance(existing, np.ndarray):
            if existing.size != array.size:
                raise InterpreterError(
                    f"binding for '{name}' has {existing.size} elements, "
                    f"declared {array.size}"
                )
            array.data[...] = existing.reshape(array.shape)
        elif existing is not None:
            array.data[...] = existing
        env[name] = array

    def _decode_subscripts(self, stack: list, spec: str) -> list:
        """Pop subscript operands per the spec (rightmost dim on top)."""
        subs: list = []
        for code in reversed(spec):
            if code == "e":
                subs.append(("e", stack.pop()))
            elif code == "f":
                subs.append(("f", None))
            elif code == "l":
                subs.append(("l", stack.pop()))
            elif code == "u":
                subs.append(("u", stack.pop()))
            elif code == "b":
                hi = stack.pop()
                lo = stack.pop()
                subs.append(("b", (lo, hi)))
            else:  # pragma: no cover - compiler emits valid specs
                raise InterpreterError(f"bad subscript spec '{code}'")
        subs.reverse()
        resolved = []
        for code, value in subs:
            if code == "e":
                value = coerce(value)
                if isinstance(value, np.ndarray) and value.ndim >= 1:
                    resolved.append(value)
                else:
                    resolved.append(self._uniform_int(value, "subscript"))
            elif code == "f":
                resolved.append(slice(None, None))
            elif code == "l":
                resolved.append(
                    slice(self._uniform_int(value, "section bound") - 1, None)
                )
            elif code == "u":
                resolved.append(slice(0, self._uniform_int(value, "section bound")))
            else:
                lo, hi = value
                resolved.append(
                    slice(
                        self._uniform_int(lo, "section bound") - 1,
                        self._uniform_int(hi, "section bound"),
                    )
                )
        return resolved

    def _pop_subs_vector(self, stack: list, count: int) -> list:
        """Fast path of :meth:`_decode_subscripts` for all-'e' specs."""
        raw = stack[-count:]
        del stack[len(stack) - count:]
        resolved = []
        for value in raw:
            value = coerce(value)
            if isinstance(value, np.ndarray) and value.ndim >= 1:
                resolved.append(value)
            else:
                resolved.append(self._uniform_int(value, "subscript"))
        return resolved

    def _load_indexed(self, env: dict, stack: list, arg, events):
        if len(arg) == 3:
            name, spec, all_vector = arg
        else:
            name, spec = arg
            all_vector = False
        if all_vector:
            subs = self._pop_subs_vector(stack, len(spec))
        else:
            subs = self._decode_subscripts(stack, spec)
        array = env.get(name)
        if isinstance(array, FArray):
            if any(isinstance(s, np.ndarray) for s in subs):
                return self._gather(array, subs, events)
            # No active lane consumes this load; clamp instead of trap.
            index = array.np_index(subs, clamp=not self._any_active)
            result = array.data[index]
            return result.copy() if isinstance(result, np.ndarray) else result
        if isinstance(array, np.ndarray) and array.ndim == 1 and len(subs) == 1:
            sub = subs[0]
            lanes = self._lanes
            if isinstance(sub, slice):
                return array[sub].copy()
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(self.nproc, int(arr))
            if self._all_active:
                if np.any((arr < 1) | (arr > array.shape[0])):
                    raise OutOfBoundsFault(f"subscript out of bounds for '{name}'")
                self._account("gather", 1, events)
                return array[arr - 1]
            if self._any_active:
                active = arr[lanes]
                if np.any((active < 1) | (active > array.shape[0])):
                    raise OutOfBoundsFault(f"subscript out of bounds for '{name}'")
            clamped = np.clip(arr, 1, array.shape[0])
            self._account("gather", 1, events)
            return array[clamped - 1]
        raise InterpreterError(f"'{name}' is not an array")

    def _gather(self, array: FArray, subs: list, events):
        lanes = self._lanes
        nproc = self.nproc
        all_active = self._all_active
        index = []
        for dim, sub in enumerate(subs):
            if isinstance(sub, slice):
                raise InterpreterError(
                    f"cannot mix sections and vector subscripts on '{array.name}'"
                )
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(nproc, int(arr))
            if arr.shape[0] != nproc:
                raise InterpreterError(
                    f"vector subscript of '{array.name}' has length "
                    f"{arr.shape[0]}, expected {nproc}"
                )
            if all_active:
                # every lane was bounds-checked; the clamp would be a no-op
                array.check_subscript(dim, arr)
                index.append(arr - 1)
                continue
            extent = array.shape[dim]
            if extent < 1:
                if self._any_active:
                    array.check_subscript(dim, arr[lanes])
                index.append(np.zeros_like(arr))
                continue
            # Raw ufuncs beat np.clip's dispatch wrapper here, and the
            # bounds check reuses the clamp: an active lane is out of
            # bounds exactly when clamping changed its subscript.
            clamped = np.minimum(np.maximum(arr, 1), extent)
            if self._any_active:
                bad = clamped != arr
                if bad.ndim > 1:
                    bad = bad.any(axis=tuple(range(1, bad.ndim)))
                np.logical_and(bad, lanes, out=bad)
                if bad.any():
                    array.check_subscript(dim, arr[lanes])
            index.append(clamped - 1)
        self._account("gather", 1, events)
        return array.data[tuple(index)]

    def _store_indexed(self, env: dict, stack: list, arg, events) -> None:
        name, spec = arg
        subs = self._decode_subscripts(stack, spec)
        value = stack.pop()
        self._store_resolved(env, name, subs, value, events)

    def _store_resolved(self, env: dict, name: str, subs: list, value, events) -> None:
        """Masked indexed store with already-resolved subscripts."""
        array = env.get(name)
        if not isinstance(array, FArray):
            raise InterpreterError(f"'{name}' is not an array")
        if any(isinstance(s, np.ndarray) for s in subs):
            self._scatter(array, subs, value, events)
            return
        # Issued with no active lane: the store writes nothing, so the
        # (possibly garbage) address must not trap — clamp, don't check.
        index = array.np_index(subs, clamp=not self._any_active)
        region = array.data[index]
        layers = self._layers_of(region)
        self._account("store", layers, events)
        if not (isinstance(region, np.ndarray) and region.ndim >= 1):
            # All lanes address the same element.  A per-lane value is
            # legal lockstep only when the active lanes agree (they all
            # write the same thing); otherwise the store is a race.
            varr = np.asarray(value)
            if varr.ndim >= 1:
                if varr.ndim != 1 or varr.shape[0] != self.nproc:
                    raise InterpreterError(
                        f"cannot store an array value into element of '{name}'"
                    )
                lanes = self._lanes
                active = varr[lanes] if self._any_active else varr
                if not np.all(active == active.flat[0]):
                    # The static R001 lint rule catches this at compile
                    # time; classify as a divergence fault either way.
                    raise DivergenceFault(
                        f"divergent lanes race on scalar element store to "
                        f"'{name}'"
                    )
                value = active.flat[0].item()
        if self._all_active:
            array.data[index] = coerce(value)
            return
        if isinstance(region, np.ndarray) and region.ndim >= 1:
            if region.shape[0] != self.nproc:
                raise InterpreterError(
                    f"masked section assignment to '{name}' needs the "
                    f"leading extent to be {self.nproc}"
                )
            mask = _align_mask(self._mask, region.ndim)
            array.data[index] = np.where(mask, coerce(value), region)
            return
        if self._uniform_bool(self._mask):
            array.data[index] = coerce(value)

    def _scatter(self, array: FArray, subs: list, value, events) -> None:
        lanes = self._lanes
        nproc = self.nproc
        all_active = self._all_active
        index = []
        for dim, sub in enumerate(subs):
            if isinstance(sub, slice):
                raise InterpreterError(
                    f"cannot mix sections and vector subscripts on '{array.name}'"
                )
            arr = np.asarray(sub)
            if arr.ndim == 0:
                arr = np.full(nproc, int(arr))
            if all_active:
                array.check_subscript(dim, arr)
                index.append(arr - 1)
                continue
            if self._any_active:
                array.check_subscript(dim, arr[lanes])
            index.append(arr[lanes] - 1)
        self._account("scatter", 1, events)
        new = np.asarray(coerce(value))
        if new.ndim == 0:
            new = np.full(nproc, new.item())
        array.data[tuple(index)] = new if all_active else new[lanes]

    def _call(self, env: dict, stack: list, arg) -> None:
        name, arg_exprs = arg
        external = self.externals.get(name)
        if external is None:
            raise InterpreterError(f"CALL to unknown external '{name}'")
        values = stack[-len(arg_exprs):] if arg_exprs else []
        del stack[len(stack) - len(arg_exprs):]
        # Var arguments were compiled as lazy placeholders.
        resolved = []
        for expr, value in zip(arg_exprs, values):
            if isinstance(expr, ast.Var):
                resolved.append(env.get(expr.name))
            else:
                resolved.append(value)
        layers = max((self._layers_of(v) for v in resolved if v is not None), default=1)
        self.counters.record_call(name, layers=layers, mask=self._lanes)
        external(self, list(arg_exprs), resolved, env, self._mask)

    # -- external writeback --------------------------------------------------------

    def assign_to(self, target, value, env: dict) -> None:
        """Masked store into a Var or ArrayRef target (external writeback).

        Mirrors :meth:`SIMDInterpreter.assign_to` so external routines
        work identically on both lockstep backends.  Subscripts that
        are plain constants, variables, or sections thereof resolve
        natively; anything fancier falls back to the shadow
        interpreter's full expression evaluator.
        """
        value = coerce(value)
        if isinstance(target, ast.Var):
            self._store(env, target.name, value, None)
            return
        if isinstance(target, ast.ArrayRef):
            subs = []
            for sub in target.subs:
                resolved = self._simple_subscript(sub, env)
                if resolved is None:
                    self._shadow_assign(target, value, env)
                    return
                subs.append(resolved)
            self._store_resolved(env, target.name, subs, value, None)
            return
        self._shadow_assign(target, value, env)

    def _simple_subscript(self, sub, env: dict):
        """Resolve a Const/Var/section subscript; None if too fancy."""
        if isinstance(sub, ast.Slice):
            lo = 1
            if sub.lo is not None:
                lo_value = self._simple_value(sub.lo, env)
                if lo_value is None:
                    return None
                lo = self._uniform_int(lo_value, "section lower bound")
            hi = None
            if sub.hi is not None:
                hi_value = self._simple_value(sub.hi, env)
                if hi_value is None:
                    return None
                hi = self._uniform_int(hi_value, "section upper bound")
            return slice(lo - 1, hi)
        value = self._simple_value(sub, env)
        if value is None:
            return None
        value = coerce(value)
        if isinstance(value, np.ndarray) and value.ndim >= 1:
            return value
        return self._uniform_int(value, "subscript")

    @staticmethod
    def _simple_value(expr, env: dict):
        if isinstance(expr, (ast.IntLit, ast.RealLit, ast.BoolLit)):
            return expr.value
        if isinstance(expr, ast.Var):
            return env.get(expr.name)
        return None

    def _shadow_assign(self, target, value, env: dict) -> None:
        self._sync_shadow()
        self._shadow.assign_to(target, value, env)


def run_bytecode(
    source: ast.SourceFile,
    nproc: int,
    bindings: dict | None = None,
    externals: dict | None = None,
) -> tuple[dict, ExecutionCounters]:
    """Compile the main program and run it on the VM."""
    from .compiler import compile_program

    code = compile_program(source)
    vm = SIMDVirtualMachine(nproc, externals)
    env = vm.run(code, bindings=bindings)
    return env, vm.counters
