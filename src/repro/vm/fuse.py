"""Superinstruction fusion for SIMD bytecode.

The VM's per-instruction overhead — budget-meter tick, trace append,
counter update, dispatch — dwarfs the numpy work of a single vector
opcode.  This pass runs once per :class:`~repro.vm.isa.CodeObject`
(memoized on the object) and rewrites maximal straight-line runs of
*simple* opcodes into one ``Op.FUSED`` superinstruction whose argument
is a :class:`FusedRun`: the original component instructions plus
pre-decoded step tuples the VM executes in a tight loop with **one**
budget tick, **one** trace extension and **one** counter flush per run.

Fusion invariants (checked by ``tests/vm/test_fuse.py`` and, for the
stack discipline, by the bytecode verifier which composes the stack
effect of a ``FUSED`` instruction from its components):

* only straight-line opcodes fuse — control transfers (``JUMP``,
  ``JUMP_IF_FALSE``, ``FOR``, ``HALT``), mask operations (``PUSH_MASK``,
  ``ELSE_MASK``, ``POP_MASK``) and ``CALL`` terminate a run, so the
  activity mask is constant inside every run;
* no instruction other than the first of a run is a jump target;
* instruction indices are preserved: the ``FUSED`` head replaces the
  first component and the remaining slots are padded with unreachable
  ``NOP``\\ s, so every jump target, source-map entry and crash-dump
  ``pc`` of the original code object stays valid;
* a run retires exactly ``len(components)`` steps, so ``executed`` /
  budget accounting matches unfused execution (within the documented
  end-of-block slack, see :mod:`repro.reliability.budget`);
* runs are capped at :data:`MAX_FUSE_LEN` components, which bounds the
  budget-metering slack.
"""

from __future__ import annotations

from ..exec.intrinsics import is_reduction_call
from .isa import CodeObject, Instr, Op

__all__ = ["FusedRun", "MAX_FUSE_LEN", "FUSIBLE_OPS", "fuse_code", "jump_targets"]

#: Upper bound on components per superinstruction; also the documented
#: budget-metering slack (a fused run is ticked once, after it retires).
MAX_FUSE_LEN = 32

#: Opcodes that may appear inside a fused run.  Everything else —
#: control transfers, mask operations, CALL — terminates a run.
FUSIBLE_OPS = frozenset(
    {
        Op.PUSH_CONST,
        Op.LOAD,
        Op.STORE,
        Op.ALLOC,
        Op.LOAD_INDEXED,
        Op.STORE_INDEXED,
        Op.BINOP,
        Op.UNOP,
        Op.INTRINSIC,
        Op.IOTA,
        Op.VECTOR,
        Op.CTL_STORE,
        Op.FOR_INCR,
        Op.NOP,
    }
)

# Step codes: pre-decoded dispatch tags for the VM's fused-run loop.
S_PUSH_CONST = 0
S_LOAD = 1
S_STORE = 2
S_BINOP = 3
S_UNOP = 4
S_LOAD_INDEXED = 5
S_STORE_INDEXED = 6
S_INTRINSIC_ELEM = 7
S_INTRINSIC_REDUCE = 8
S_IOTA = 9
S_VECTOR = 10
S_CTL_STORE = 11
S_ALLOC = 12
S_FOR_INCR = 13
S_NOP = 14

_STEP_CODES = {
    Op.PUSH_CONST: S_PUSH_CONST,
    Op.LOAD: S_LOAD,
    Op.STORE: S_STORE,
    Op.BINOP: S_BINOP,
    Op.UNOP: S_UNOP,
    Op.LOAD_INDEXED: S_LOAD_INDEXED,
    Op.STORE_INDEXED: S_STORE_INDEXED,
    Op.IOTA: S_IOTA,
    Op.VECTOR: S_VECTOR,
    Op.CTL_STORE: S_CTL_STORE,
    Op.ALLOC: S_ALLOC,
    Op.FOR_INCR: S_FOR_INCR,
    Op.NOP: S_NOP,
}


class FusedRun:
    """The decoded body of one ``Op.FUSED`` superinstruction.

    Attributes:
        instrs: The original component instructions, in order.
        steps: One ``(code, arg, instr)`` tuple per component — ``code``
            is an ``S_*`` dispatch tag, ``arg`` a pre-decoded immediate.
        trace: One ``(pc, op_name, line)`` tuple per component, ready to
            extend the VM's crash-dump ring buffer.
        count: Number of components (== slots occupied, NOP padding
            included, so ``next_pc = pc + count``).
        last_loc: Source location of the final component (budget errors
            raised at the end of a run point here).
    """

    __slots__ = ("instrs", "steps", "trace", "count", "last_loc")

    def __init__(self, instrs: tuple[Instr, ...], start: int):
        self.instrs = instrs
        self.count = len(instrs)
        steps = []
        trace = []
        for offset, instr in enumerate(instrs):
            if instr.op not in FUSIBLE_OPS:  # pragma: no cover - fuse_code filters
                raise ValueError(f"op {instr.op.name} is not fusible")
            arg = instr.arg
            if instr.op is Op.INTRINSIC:
                name, argc = arg
                code = (
                    S_INTRINSIC_REDUCE
                    if is_reduction_call(name, argc)
                    else S_INTRINSIC_ELEM
                )
            else:
                code = _STEP_CODES[instr.op]
                if instr.op is Op.LOAD_INDEXED:
                    name, spec = arg
                    # pre-decode the common all-vector-subscript case
                    arg = (name, spec, spec == "e" * len(spec))
            steps.append((code, arg, instr))
            line = instr.loc.line if instr.loc is not None else None
            trace.append((start + offset, instr.op.name, line))
        self.steps = tuple(steps)
        self.trace = tuple(trace)
        self.last_loc = instrs[-1].loc

    def __repr__(self) -> str:
        body = "; ".join(repr(i) for i in self.instrs[:4])
        if self.count > 4:
            body += f"; ... +{self.count - 4}"
        return f"<fused {self.count}: {body}>"


def jump_targets(instructions: tuple[Instr, ...]) -> set[int]:
    """Indices that some instruction may transfer control to."""
    targets = {0}
    for instr in instructions:
        op = instr.op
        if op is Op.JUMP or op is Op.JUMP_IF_FALSE:
            targets.add(instr.arg)
        elif op is Op.FOR:
            targets.add(instr.arg[3])
    return targets


def fuse_code(code: CodeObject, max_len: int = MAX_FUSE_LEN) -> CodeObject:
    """Fuse straight-line runs of ``code`` into superinstructions.

    Returns a new :class:`CodeObject` with the same length, name and
    source map (indices are preserved via NOP padding); memoized on
    ``code``.  A code object that already contains ``FUSED``
    instructions is returned unchanged.
    """
    cached = getattr(code, "_fused", None)
    if cached is not None:
        return cached
    instructions = code.instructions
    if any(i.op is Op.FUSED for i in instructions):
        code._fused = code
        return code
    targets = jump_targets(instructions)
    out: list[Instr] = []
    run: list[Instr] = []

    def flush() -> None:
        if not run:
            return
        if len(run) == 1:
            out.append(run[0])
        else:
            start = len(out)
            head = run[0]
            out.append(
                Instr(Op.FUSED, FusedRun(tuple(run), start), loc=head.loc)
            )
            out.extend(Instr(Op.NOP, loc=i.loc) for i in run[1:])
        run.clear()

    for index, instr in enumerate(instructions):
        if instr.op not in FUSIBLE_OPS:
            flush()
            out.append(instr)
            continue
        if index in targets or len(run) >= max_len:
            flush()
        run.append(instr)
    flush()
    fused = CodeObject(code.name, tuple(out), dict(code.source_map))
    fused._fused = fused
    code._fused = fused
    return fused
