"""AST → SIMD bytecode compiler.

Lowers a MiniF routine to the linear ISA of :mod:`repro.vm.isa`:

* structured control flow becomes labels and (uniform) jumps;
* WHERE/ELSEWHERE become mask-stack bracketing;
* DO loops are compiled counted (bound evaluated once into a hidden
  limit variable, Fortran semantics);
* EXIT/CYCLE jump to the innermost loop's exit/continue labels;
* GOTO works between statements of the same routine (labels are
  collected up front); FORALL compiles lane-parallel when its extent
  equals the machine width is *not* statically known, so FORALL
  compiles to the iota-binding form and the VM checks the extent.

Restrictions (diagnosed, not silently miscompiled): user-subroutine
CALLs are not inlined — only external routines may be called.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..lang import ast
from ..lang.errors import TransformError
from .isa import CodeObject, Instr, Op


@dataclass
class _Label:
    """A forward-patchable jump target."""

    index: int | None = None
    patch_sites: list[int] = field(default_factory=list)


class Compiler:
    """Compiles one routine body to a :class:`CodeObject`."""

    def __init__(self, known_subroutines: set[str] | None = None):
        self.known_subroutines = known_subroutines or set()
        self._code: list[Instr] = []
        self._source_map: dict[int, int] = {}
        self._loop_stack: list[tuple[_Label, _Label]] = []  # (continue, exit)
        self._stmt_labels: dict[int, _Label] = {}
        self._temp = 0

    # -- low-level emission -----------------------------------------------------

    def _emit(self, op: Op, arg=None, loc=None, acu: bool = False) -> int:
        index = len(self._code)
        self._code.append(Instr(op, arg, acu, loc if loc is not None and loc.line else None))
        if loc is not None and loc.line:
            self._source_map[index] = loc.line
        return index

    def _new_label(self) -> _Label:
        return _Label()

    def _bind(self, label: _Label) -> None:
        label.index = len(self._code)
        for site in label.patch_sites:
            old = self._code[site]
            if old.op is Op.FOR:
                # the jump target is the last slot of the FOR tuple
                arg = (*old.arg[:-1], label.index)
            else:
                arg = label.index
            self._code[site] = replace(old, arg=arg)

    def _jump(self, op: Op, label: _Label, loc=None, acu: bool = False) -> None:
        site = self._emit(op, label.index, loc, acu=acu)
        if label.index is None:
            label.patch_sites.append(site)

    def _fresh(self, stem: str) -> str:
        self._temp += 1
        return f"__{stem}{self._temp}"

    # -- entry point --------------------------------------------------------------

    def compile_routine(self, routine: ast.Routine) -> CodeObject:
        for node in ast.walk_body(routine.body):
            if isinstance(node, ast.Stmt) and node.label is not None:
                self._stmt_labels[node.label] = self._new_label()
        self._compile_body(routine.body)
        self._emit(Op.HALT)
        return CodeObject(routine.name, tuple(self._code), self._source_map)

    # -- statements ----------------------------------------------------------------

    def _compile_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            if stmt.label is not None:
                self._bind(self._stmt_labels[stmt.label])
            self._compile_stmt(stmt)

    def _compile_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, f"_compile_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise TransformError(
                f"cannot compile {type(stmt).__name__} to SIMD bytecode", stmt.loc
            )
        method(stmt)

    def _compile_decl(self, stmt: ast.Decl) -> None:
        for entity in stmt.entities:
            if not entity.dims:
                continue
            for dim in entity.dims:
                self._compile_expr(dim)
            base = stmt.base_type if stmt.base_type != "dimension" else "real"
            self._emit(
                Op.ALLOC, (entity.name, len(entity.dims), base), stmt.loc
            )

    def _compile_paramdecl(self, stmt: ast.ParamDecl) -> None:
        for name, value in zip(stmt.names, stmt.values):
            self._compile_expr(value)
            self._emit(Op.CTL_STORE, (name, "raw"), stmt.loc)

    def _compile_decomposition(self, stmt) -> None:
        pass

    def _compile_align(self, stmt) -> None:
        pass

    def _compile_distribute(self, stmt) -> None:
        pass

    def _compile_continue(self, stmt) -> None:
        self._emit(Op.NOP, None, stmt.loc)

    def _compile_assign(self, stmt: ast.Assign) -> None:
        self._compile_expr(stmt.value)
        self._compile_store(stmt.target, stmt.loc)

    def _compile_store(self, target: ast.Expr, loc) -> None:
        if isinstance(target, ast.Var):
            self._emit(Op.STORE, target.name, loc)
            return
        if isinstance(target, ast.ArrayRef):
            spec = self._compile_subscripts(target)
            self._emit(Op.STORE_INDEXED, (target.name, spec), loc)
            return
        raise TransformError("invalid assignment target", loc)

    def _compile_do(self, stmt: ast.Do) -> None:
        limit = self._fresh("limit")
        stride_name = self._fresh("stride")
        # Bounds are evaluated exactly once (Fortran counted-loop
        # semantics); the loop-control state lives in hidden names and
        # is maintained by unpriced control opcodes, so the per-trip
        # cost is a single ACU event — the same accounting as the
        # tree-walking interpreter.
        self._compile_expr(stmt.lo)
        self._compile_expr(stmt.hi)
        if stmt.stride is not None:
            self._compile_expr(stmt.stride)
        else:
            self._emit(Op.PUSH_CONST, 1)
        self._emit(Op.CTL_STORE, (stride_name, "int"), stmt.loc)
        self._emit(Op.CTL_STORE, (limit, "int"), stmt.loc)
        self._emit(Op.CTL_STORE, (stmt.var, "int"), stmt.loc)

        head = self._new_label()
        cont = self._new_label()
        exit_ = self._new_label()
        self._bind(head)
        site = self._emit(
            Op.FOR, (stmt.var, limit, stride_name, exit_.index), stmt.loc
        )
        if exit_.index is None:
            exit_.patch_sites.append(site)
        self._loop_stack.append((cont, exit_))
        self._compile_body(stmt.body)
        self._loop_stack.pop()
        self._bind(cont)
        self._emit(Op.FOR_INCR, (stmt.var, stride_name), stmt.loc)
        self._jump(Op.JUMP, head)
        self._bind(exit_)

    def _compile_dowhile(self, stmt: ast.DoWhile) -> None:
        self._compile_while_like(stmt.cond, stmt.body, stmt.loc)

    def _compile_while(self, stmt: ast.While) -> None:
        self._compile_while_like(stmt.cond, stmt.body, stmt.loc)

    def _compile_while_like(self, cond: ast.Expr, body, loc) -> None:
        head = self._new_label()
        exit_ = self._new_label()
        self._bind(head)
        self._compile_expr(cond)
        self._jump(Op.JUMP_IF_FALSE, exit_, loc)
        self._loop_stack.append((head, exit_))
        self._compile_body(body)
        self._loop_stack.pop()
        self._jump(Op.JUMP, head)
        self._bind(exit_)

    def _compile_if(self, stmt: ast.If) -> None:
        else_ = self._new_label()
        end = self._new_label()
        self._compile_expr(stmt.cond)
        self._jump(Op.JUMP_IF_FALSE, else_, stmt.loc)
        self._compile_body(stmt.then_body)
        if stmt.else_body:
            self._jump(Op.JUMP, end)
            self._bind(else_)
            self._compile_body(stmt.else_body)
            self._bind(end)
        else:
            self._bind(else_)

    def _compile_where(self, stmt: ast.Where) -> None:
        self._compile_expr(stmt.mask)
        self._emit(Op.PUSH_MASK, None, stmt.loc)
        self._compile_body(stmt.then_body)
        if stmt.else_body:
            self._emit(Op.ELSE_MASK, None, stmt.loc)
            self._compile_body(stmt.else_body)
        self._emit(Op.POP_MASK, None, stmt.loc)

    def _compile_forall(self, stmt: ast.Forall) -> None:
        # Lane-parallel form: bind the iota vector and run the body
        # under the (optional) mask; the VM verifies extent == P.
        self._compile_expr(stmt.lo)
        self._compile_expr(stmt.hi)
        self._emit(Op.IOTA, None, stmt.loc)
        self._emit(Op.CTL_STORE, (stmt.var, "raw"), stmt.loc)
        if stmt.mask is not None:
            self._compile_expr(stmt.mask)
            self._emit(Op.PUSH_MASK, None, stmt.loc)
        self._compile_body(stmt.body)
        if stmt.mask is not None:
            self._emit(Op.POP_MASK, None, stmt.loc)

    def _compile_goto(self, stmt: ast.Goto) -> None:
        label = self._stmt_labels.get(stmt.target)
        if label is None:
            raise TransformError(f"GOTO {stmt.target}: no such label", stmt.loc)
        self._jump(Op.JUMP, label, stmt.loc, acu=True)

    def _compile_exitstmt(self, stmt: ast.ExitStmt) -> None:
        if not self._loop_stack:
            raise TransformError("EXIT outside of a loop", stmt.loc)
        self._jump(Op.JUMP, self._loop_stack[-1][1], stmt.loc)

    def _compile_cyclestmt(self, stmt: ast.CycleStmt) -> None:
        if not self._loop_stack:
            raise TransformError("CYCLE outside of a loop", stmt.loc)
        self._jump(Op.JUMP, self._loop_stack[-1][0], stmt.loc)

    def _compile_return(self, stmt) -> None:
        self._emit(Op.HALT, None, stmt.loc)

    def _compile_stop(self, stmt) -> None:
        self._emit(Op.HALT, None, stmt.loc)

    def _compile_callstmt(self, stmt: ast.CallStmt) -> None:
        if stmt.name in self.known_subroutines:
            raise TransformError(
                f"user subroutine '{stmt.name}' cannot be compiled yet — "
                "inline it or register it as an external",
                stmt.loc,
            )
        # Arguments: push values for loadable args (None marker for
        # output-only unset vars is the VM's job); record the arg
        # expressions so the external can write back.
        for arg in stmt.args:
            self._compile_arg(arg)
        self._emit(Op.CALL, (stmt.name, tuple(stmt.args)), stmt.loc)

    def _compile_arg(self, arg: ast.Expr) -> None:
        if isinstance(arg, ast.Var):
            self._emit(Op.PUSH_CONST, None)  # placeholder; VM loads lazily
            return
        self._compile_expr(arg)

    # -- expressions -----------------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.BoolLit)):
            self._emit(Op.PUSH_CONST, expr.value, expr.loc)
        elif isinstance(expr, ast.RealLit):
            self._emit(Op.PUSH_CONST, expr.value, expr.loc)
        elif isinstance(expr, ast.StringLit):
            self._emit(Op.PUSH_CONST, expr.value, expr.loc)
        elif isinstance(expr, ast.Var):
            self._emit(Op.LOAD, expr.name, expr.loc)
        elif isinstance(expr, ast.ArrayRef):
            spec = self._compile_subscripts(expr)
            self._emit(Op.LOAD_INDEXED, (expr.name, spec), expr.loc)
        elif isinstance(expr, ast.BinOp):
            self._compile_expr(expr.left)
            self._compile_expr(expr.right)
            self._emit(Op.BINOP, expr.op, expr.loc)
        elif isinstance(expr, ast.UnOp):
            self._compile_expr(expr.operand)
            self._emit(Op.UNOP, expr.op, expr.loc)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._compile_expr(arg)
            self._emit(Op.INTRINSIC, (expr.name, len(expr.args)), expr.loc)
        elif isinstance(expr, ast.VectorLit):
            for item in expr.items:
                self._compile_expr(item)
            self._emit(Op.VECTOR, len(expr.items), expr.loc)
        elif isinstance(expr, ast.RangeVec):
            self._compile_expr(expr.lo)
            self._compile_expr(expr.hi)
            self._emit(Op.IOTA, None, expr.loc)
        else:
            raise TransformError(
                f"cannot compile expression {type(expr).__name__}", expr.loc
            )

    def _compile_subscripts(self, ref: ast.ArrayRef) -> str:
        """Push subscript operands; return the per-dimension spec string."""
        spec = []
        for sub in ref.subs:
            if isinstance(sub, ast.Slice):
                if sub.lo is None and sub.hi is None:
                    spec.append("f")
                elif sub.hi is None:
                    self._compile_expr(sub.lo)
                    spec.append("l")
                elif sub.lo is None:
                    self._compile_expr(sub.hi)
                    spec.append("u")
                else:
                    self._compile_expr(sub.lo)
                    self._compile_expr(sub.hi)
                    spec.append("b")
            else:
                self._compile_expr(sub)
                spec.append("e")
        return "".join(spec)


def compile_routine(
    routine: ast.Routine, known_subroutines: set[str] | None = None
) -> CodeObject:
    """Compile a routine to SIMD bytecode."""
    return Compiler(known_subroutines).compile_routine(routine)


def compile_program(source: ast.SourceFile) -> CodeObject:
    """Compile the main program of a source file."""
    known = {unit.name for unit in source.units if unit.kind == "subroutine"}
    return compile_routine(source.main, known)
