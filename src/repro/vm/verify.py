"""Static verification of SIMD bytecode.

The VM (:mod:`repro.vm.machine`) trusts the compiler: an unbalanced
mask stack only surfaces at HALT, a wild jump executes garbage, and a
missing loop temp raises deep inside a run.  The verifier proves the
translation invariants *per code object, before execution*, with a
worklist dataflow over the instruction graph:

* every jump target lands inside the instruction sequence;
* the **mask depth** is consistent on all paths into each instruction,
  never underflows (``POP_MASK``/``ELSE_MASK`` on an empty stack) and
  is zero at every ``HALT``;
* the **operand stack depth** is consistent at merge points, never
  underflows, and is empty at every ``HALT``;
* compiler-generated registers (``__``-prefixed loop temps) are
  defined on every path before ``LOAD``/``FOR``/``FOR_INCR`` reads
  them.  User-visible names are exempt: bindings legitimately define
  them at run time.

Findings are :class:`~repro.diag.Diagnostic`\\ s with ``Vxxx`` codes,
so the CLI and the Engine report them alongside lint findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diag.diagnostics import Diagnostic, DiagnosticReport, Severity
from ..lang.errors import CompileError, UNKNOWN_LOCATION
from .fuse import FUSIBLE_OPS as _FUSIBLE
from .isa import CodeObject, Instr, Op, SUB_SPECS

__all__ = [
    "VerificationError",
    "verify_code",
    "assert_verified",
    "stack_effect",
]


class VerificationError(CompileError):
    """A code object failed bytecode verification."""


#: Operand-stack pops per subscript-spec character (see SUB_SPECS).
_SPEC_POPS = {"e": 1, "f": 0, "l": 1, "u": 1, "b": 2}


def _spec_pops(spec: str) -> int:
    return sum(_SPEC_POPS[c] for c in spec)


def stack_effect(instr: Instr) -> tuple[int, int]:
    """(pops, pushes) of one instruction on the operand stack.

    Raises :class:`ValueError` for a malformed immediate argument —
    the verifier reports that as ``V008``.
    """
    op = instr.op
    arg = instr.arg
    if op is Op.PUSH_CONST or op is Op.LOAD:
        return 0, 1
    if op is Op.STORE or op is Op.CTL_STORE or op is Op.JUMP_IF_FALSE:
        return 1, 0
    if op is Op.PUSH_MASK:
        return 1, 0
    if op is Op.ALLOC:
        name, rank, _base = arg
        if not isinstance(rank, int) or rank < 0:
            raise ValueError(f"ALLOC {name!r}: bad rank {rank!r}")
        return rank, 0
    if op is Op.LOAD_INDEXED or op is Op.STORE_INDEXED:
        name, spec = arg
        if not isinstance(spec, str) or any(c not in SUB_SPECS for c in spec):
            raise ValueError(f"{op.name} {name!r}: bad subscript spec {spec!r}")
        pops = _spec_pops(spec)
        if op is Op.STORE_INDEXED:
            return pops + 1, 0
        return pops, 1
    if op is Op.BINOP:
        return 2, 1
    if op is Op.UNOP:
        return 1, 1
    if op is Op.INTRINSIC:
        _name, argc = arg
        if not isinstance(argc, int) or argc < 0:
            raise ValueError(f"INTRINSIC: bad argc {argc!r}")
        return argc, 1
    if op is Op.IOTA:
        return 2, 1
    if op is Op.VECTOR:
        if not isinstance(arg, int) or arg < 1:
            raise ValueError(f"VECTOR: bad element count {arg!r}")
        return arg, 1
    if op is Op.CALL:
        _name, arg_exprs = arg
        return len(arg_exprs), 0
    if op is Op.FUSED:
        # Compose the components' effects: the run's pops are the
        # deepest cumulative deficit, so internal underflow surfaces
        # as a V004 of the superinstruction itself.
        components = getattr(arg, "instrs", None)
        if not components:
            raise ValueError("FUSED with no component instructions")
        depth = 0
        lowest = 0
        for comp in components:
            if comp.op is Op.FUSED or comp.op not in _FUSIBLE:
                raise ValueError(
                    f"FUSED contains non-straight-line op {comp.op.name}"
                )
            pops, pushes = stack_effect(comp)
            depth -= pops
            if depth < lowest:
                lowest = depth
            depth += pushes
        return -lowest, depth - lowest
    # ELSE_MASK, POP_MASK, JUMP, FOR, FOR_INCR, NOP, HALT
    return 0, 0


def _jump_targets(instr: Instr, index: int, size: int):
    """Successor indices of one instruction (``None`` marks fallthrough)."""
    op = instr.op
    if op is Op.HALT:
        return []
    if op is Op.JUMP:
        return [instr.arg]
    if op is Op.JUMP_IF_FALSE:
        return [index + 1, instr.arg]
    if op is Op.FOR:
        _var, _limit, _stride, exit_index = instr.arg
        return [index + 1, exit_index]
    if op is Op.FUSED:
        # The run occupies len(components) slots (NOP padding preserves
        # instruction indices); control falls through past the padding.
        return [index + len(instr.arg.instrs)]
    return [index + 1]


def _is_temp(name) -> bool:
    return isinstance(name, str) and name.startswith("__")


def _reads(instr: Instr):
    """Register names an instruction reads from the environment."""
    op = instr.op
    if op is Op.LOAD:
        return (instr.arg,)
    if op is Op.FOR:
        var, limit, stride, _exit = instr.arg
        return (var, limit, stride)
    if op is Op.FOR_INCR:
        var, stride = instr.arg
        return (var, stride)
    if op is Op.FUSED:
        # A read is external only if no earlier component defined it.
        reads = []
        defined: set = set()
        for comp in instr.arg.instrs:
            for name in _reads(comp):
                if name not in defined and name not in reads:
                    reads.append(name)
            defined.update(_writes(comp))
        return tuple(reads)
    return ()


def _writes(instr: Instr):
    """Register names an instruction defines."""
    op = instr.op
    if op is Op.STORE or op is Op.ALLOC:
        name = instr.arg if op is Op.STORE else instr.arg[0]
        return (name,)
    if op is Op.CTL_STORE:
        return (instr.arg[0],)
    if op is Op.FOR_INCR:
        return (instr.arg[0],)
    if op is Op.FUSED:
        names: list = []
        for comp in instr.arg.instrs:
            for name in _writes(comp):
                if name not in names:
                    names.append(name)
        return tuple(names)
    return ()


@dataclass(frozen=True)
class _State:
    """Abstract machine state at one instruction boundary."""

    mask_depth: int
    stack_depth: int
    defined: frozenset


def verify_code(code: CodeObject) -> DiagnosticReport:
    """Statically verify one code object; returns the findings."""
    report = DiagnosticReport()
    instructions = code.instructions
    size = len(instructions)
    seen: set[tuple[str, int]] = set()

    def finding(code_id: str, index: int, message: str) -> None:
        if (code_id, index) in seen:
            return
        seen.add((code_id, index))
        instr = instructions[index] if index < size else None
        loc = instr.loc if instr is not None and instr.loc is not None else UNKNOWN_LOCATION
        report.add(
            Diagnostic(
                code=code_id,
                severity=Severity.ERROR,
                message=f"at pc {index}: {message}",
                location=loc,
                routine=code.name,
            )
        )

    if size == 0:
        finding("V001", 0, "empty code object (no HALT)")
        return report

    states: dict[int, _State] = {}
    worklist = [0]
    states[0] = _State(0, 0, frozenset())
    while worklist:
        index = worklist.pop()
        state = states[index]
        instr = instructions[index]
        op = instr.op

        # -- argument well-formedness & stack effect ---------------------
        try:
            pops, pushes = stack_effect(instr)
        except (ValueError, TypeError) as exc:
            finding("V008", index, f"malformed instruction argument: {exc}")
            continue

        # -- operand stack ----------------------------------------------
        if state.stack_depth < pops:
            finding(
                "V004",
                index,
                f"operand stack underflow: {op.name} pops {pops}, "
                f"depth is {state.stack_depth}",
            )
            continue
        stack_depth = state.stack_depth - pops + pushes

        # -- mask stack --------------------------------------------------
        mask_depth = state.mask_depth
        if op is Op.PUSH_MASK:
            mask_depth += 1
        elif op is Op.ELSE_MASK:
            if mask_depth < 1:
                finding("V002", index, "ELSE_MASK with empty mask stack")
                continue
        elif op is Op.POP_MASK:
            if mask_depth < 1:
                finding("V002", index, "POP_MASK with empty mask stack")
                continue
            mask_depth -= 1
        elif op is Op.HALT:
            if mask_depth != 0:
                finding(
                    "V003",
                    index,
                    f"mask stack not drained at HALT: depth {mask_depth}",
                )
            if state.stack_depth != 0:
                finding(
                    "V005",
                    index,
                    f"operand stack not empty at HALT: depth {state.stack_depth}",
                )
            continue

        # -- registers ---------------------------------------------------
        defined = state.defined
        undefined = [
            name for name in _reads(instr) if _is_temp(name) and name not in defined
        ]
        if undefined:
            finding(
                "V006",
                index,
                f"{op.name} reads compiler temp(s) "
                f"{', '.join(repr(n) for n in undefined)} not defined on "
                "every path here",
            )
            continue
        writes = [name for name in _writes(instr) if _is_temp(name)]
        if writes:
            defined = defined | frozenset(writes)

        # -- successors --------------------------------------------------
        out = _State(mask_depth, stack_depth, defined)
        for succ in _jump_targets(instr, index, size):
            if not isinstance(succ, int) or succ < 0 or succ >= size:
                finding("V001", index, f"jump target {succ!r} outside [0, {size})")
                continue
            old = states.get(succ)
            if old is None:
                states[succ] = out
                worklist.append(succ)
                continue
            if old.mask_depth != out.mask_depth:
                finding(
                    "V007",
                    succ,
                    f"mask depth mismatch at merge: {old.mask_depth} vs "
                    f"{out.mask_depth}",
                )
                continue
            if old.stack_depth != out.stack_depth:
                finding(
                    "V005",
                    succ,
                    f"operand stack depth mismatch at merge: "
                    f"{old.stack_depth} vs {out.stack_depth}",
                )
                continue
            merged_defs = old.defined & out.defined
            if merged_defs != old.defined:
                states[succ] = _State(old.mask_depth, old.stack_depth, merged_defs)
                if succ not in worklist:
                    worklist.append(succ)
    return report


def assert_verified(code: CodeObject) -> CodeObject:
    """Verify ``code``; raise :class:`VerificationError` on findings."""
    report = verify_code(code)
    if report.has_errors:
        first = report.errors[0]
        raise VerificationError(
            f"bytecode verification of '{code.name}' failed: "
            f"{len(report.errors)} finding(s); first: [{first.code}] "
            f"{first.message}",
            diagnostics=report.errors,
            location=first.location,
        )
    return code
