"""SIMD bytecode: a linear ISA, an AST compiler, and a lockstep VM.

A second, independent implementation of the lockstep execution
semantics — the test suite runs it differentially against the
tree-walking interpreter of :mod:`repro.exec.simd`.
"""

from .compiler import Compiler, compile_program, compile_routine
from .fuse import FUSIBLE_OPS, FusedRun, MAX_FUSE_LEN, fuse_code
from .isa import CodeObject, Instr, Op
from .machine import SIMDVirtualMachine, run_bytecode
from .verify import VerificationError, assert_verified, stack_effect, verify_code

__all__ = [
    "Op",
    "Instr",
    "CodeObject",
    "Compiler",
    "compile_routine",
    "compile_program",
    "SIMDVirtualMachine",
    "run_bytecode",
    "verify_code",
    "assert_verified",
    "stack_effect",
    "VerificationError",
    "FusedRun",
    "FUSIBLE_OPS",
    "MAX_FUSE_LEN",
    "fuse_code",
]
