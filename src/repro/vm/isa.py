"""The SIMD bytecode instruction set.

A linear ISA that makes the paper's machine model explicit:

* one program counter — all control transfers (``JUMP_IF_FALSE``)
  require a *uniform* condition across the active PEs, enforced at
  execution time;
* per-PE divergence is expressed only through the **mask stack** —
  ``PUSH_MASK`` intersects the current activity mask with a popped
  condition, ``ELSE_MASK`` flips to the complementary lanes,
  ``POP_MASK`` restores;
* indirect addressing is a distinct pair of opcodes
  (``LOAD_INDEXED``/``STORE_INDEXED`` with vector subscripts perform
  gather/scatter), since both target machines price it separately.

Programs are :class:`CodeObject`\\ s: a flat instruction tuple with
all labels resolved to instruction indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from ..lang.errors import SourceLocation


class Op(Enum):
    """Opcodes of the SIMD bytecode."""

    PUSH_CONST = auto()   #: arg: constant value
    LOAD = auto()         #: arg: name — push the variable's value
    STORE = auto()        #: arg: name — masked store of the popped value
    ALLOC = auto()        #: arg: (name, rank, base_type) — pop extents, allocate
    LOAD_INDEXED = auto()  #: arg: (name, spec) — pop subscripts, push element(s)
    STORE_INDEXED = auto()  #: arg: (name, spec) — pop value + subscripts
    BINOP = auto()        #: arg: operator spelling
    UNOP = auto()         #: arg: operator spelling
    INTRINSIC = auto()    #: arg: (name, argc)
    IOTA = auto()         #: pop hi, lo — push [lo : hi]
    VECTOR = auto()       #: arg: n — build a vector from n popped values
    CALL = auto()         #: arg: (name, arg_specs) — external subroutine
    PUSH_MASK = auto()    #: pop condition, push mask = current ∧ cond
    ELSE_MASK = auto()    #: flip to outer ∧ ¬cond (top mask entry)
    POP_MASK = auto()     #: restore the enclosing mask
    JUMP = auto()         #: arg: target index
    JUMP_IF_FALSE = auto()  #: arg: target index — pops a uniform condition
    CTL_STORE = auto()    #: arg: (name, mode) — control store, not priced
    FOR = auto()          #: arg: (var, limit, stride, exit index) — loop head
    FOR_INCR = auto()     #: arg: (var, stride) — env[var] += env[stride]
    NOP = auto()          #: label placeholder (kept for debuggability)
    HALT = auto()         #: end of program / RETURN
    FUSED = auto()        #: arg: FusedRun — straight-line superinstruction


#: Subscript-spec codes for LOAD_INDEXED / STORE_INDEXED, one per
#: dimension, describing what the compiler pushed for that dimension:
#: 'e' — one expression value; 'f' — full-extent slice (nothing
#: pushed); 'l' — lower-bounded slice (one value); 'u' — upper-bounded
#: slice (one value); 'b' — both bounds (two values, lo first).
SUB_SPECS = ("e", "f", "l", "u", "b")


@dataclass(frozen=True)
class Instr:
    """One instruction: an opcode plus its immediate argument.

    ``acu`` marks control transfers that represent *source-level*
    front-end work (GOTO) and are priced as one ACU event; structural
    jumps the compiler synthesizes (loop back-edges, IF joins, EXIT,
    CYCLE) carry ``acu=False`` and execute for free, matching the
    tree-walking interpreter's accounting.

    ``loc`` is the :class:`~repro.lang.errors.SourceLocation` of the
    AST node the instruction was compiled from (None for synthesized
    instructions) — the same span type the linter's diagnostics and
    the crash-dump snapshots carry.  The VM stamps it onto every error
    it raises so runtime diagnostics point back at the original source
    line.
    """

    op: Op
    arg: object = None
    acu: bool = False
    loc: SourceLocation | None = None

    def __repr__(self) -> str:
        if self.arg is None:
            return self.op.name
        return f"{self.op.name} {self.arg!r}"


@dataclass
class CodeObject:
    """A compiled routine.

    Attributes:
        name: Source routine name.
        instructions: The flat instruction sequence.
        source_map: instruction index -> source line (best effort).
    """

    name: str
    instructions: tuple[Instr, ...]
    source_map: dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        """Human-readable listing."""
        lines = [f"; routine {self.name} ({len(self.instructions)} instructions)"]
        for index, instr in enumerate(self.instructions):
            line = self.source_map.get(index)
            suffix = f"    ; line {line}" if line else ""
            lines.append(f"{index:4d}  {instr!r}{suffix}")
        return "\n".join(lines)
