"""Cached compile-and-run runtime — the front door for executing MiniF.

:class:`Engine` memoizes the parse/transform/bytecode pipeline;
:class:`CompiledProgram` is the reusable artifact; :class:`RunResult`
is the uniform outcome shape shared by every backend.
"""

from .engine import (
    CompiledProgram,
    CompileOptions,
    Engine,
    EngineStats,
    default_engine,
    reset_default_engine,
)
from .result import RunResult

__all__ = [
    "CompileOptions",
    "CompiledProgram",
    "Engine",
    "EngineStats",
    "RunResult",
    "default_engine",
    "reset_default_engine",
]
