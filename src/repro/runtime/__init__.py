"""Cached compile-and-run runtime — the front door for executing MiniF.

:class:`Engine` memoizes the parse/transform/bytecode pipeline;
:class:`CompiledProgram` is the reusable artifact; :class:`RunResult`
is the uniform outcome shape shared by every backend.  The reliability
layer's run-facing names (:class:`Budget`, :class:`FallbackPolicy`,
:class:`FaultPlan`, the fault taxonomy) are re-exported here so a
guarded run needs only one import.
"""

from ..reliability import (
    Attempt,
    BackendFault,
    Budget,
    BudgetExceeded,
    DivergenceFault,
    FallbackPolicy,
    FaultPlan,
    OutOfBoundsFault,
    ReliabilityError,
)
from .config import BackendConfig
from .engine import (
    CompiledProgram,
    CompileOptions,
    Engine,
    EngineStats,
    default_engine,
    reset_default_engine,
)
from .result import RunResult
from .store import ArtifactError, ArtifactStore, artifact_digest

__all__ = [
    "ArtifactError",
    "ArtifactStore",
    "Attempt",
    "BackendConfig",
    "BackendFault",
    "Budget",
    "BudgetExceeded",
    "CompileOptions",
    "CompiledProgram",
    "DivergenceFault",
    "Engine",
    "EngineStats",
    "FallbackPolicy",
    "FaultPlan",
    "OutOfBoundsFault",
    "ReliabilityError",
    "RunResult",
    "artifact_digest",
    "default_engine",
    "reset_default_engine",
]
