"""Unified backend construction: :class:`BackendConfig`.

The four execution backends historically grew four different
constructor signatures (the scalar interpreter has no ``nproc``, the
MIMD simulator takes no ``counters``, the VM adds ``fuse``...).
:class:`BackendConfig` is the one bag of settings every backend knows
how to consume via its ``from_config`` classmethod, and the shape the
Engine threads through :meth:`CompiledProgram.run` →
``CompiledProgram._execute`` → backend construction.

Fields a backend does not support are simply ignored by its
``from_config`` (e.g. ``vm_fuse`` outside the VM), so one config can
drive a whole fallback chain.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BackendConfig:
    """Constructor settings shared by all execution backends.

    Attributes:
        nproc: PE/processor count (0 = sequential-only contexts).
        externals: External subroutine registry (name → callable).
        counters: An :class:`~repro.exec.counters.ExecutionCounters`
            to accumulate into, or None for a fresh accumulator.
        budget: Execution guard (:class:`~repro.reliability.Budget`),
            or None for each backend's default step cap.
        fault_plan: Deterministic fault injection plan, or None.
        max_instructions: Step cap used when ``budget`` is None
            (``max_statements`` on the tree-walkers); None keeps each
            backend's default.
        vm_fuse: Enable superinstruction fusion (VM only).
        workers: Worker-process pool size (pmimd only; None picks a
            per-core default).
        shards: Shard count for the processor partition (pmimd only;
            None picks ``min(nproc, 2 × workers)``).
        shard_layout: ``"block"`` or ``"cyclic"`` processor-to-shard
            distribution (pmimd only).
        supervision: A
            :class:`~repro.reliability.supervisor.SupervisionPolicy`
            for the worker pool (pmimd only; None uses the defaults).
        checkpoint_every: Capture a restorable
            :class:`~repro.reliability.checkpoint.Checkpoint` every
            this many executed steps/statements (vm, scalar and pmimd
            backends; None disables durable execution).
        checkpoint_dir: Root of the on-disk
            :class:`~repro.reliability.checkpoint.CheckpointStore`.
            For vm/scalar runs the Engine saves each capture there
            (key ``"run"``); for pmimd the workers keep per-processor
            keys so shard replays resume instead of rerunning.
    """

    nproc: int = 0
    externals: dict | None = None
    counters: object | None = None
    budget: object | None = None
    fault_plan: object | None = None
    max_instructions: int | None = None
    vm_fuse: bool = True
    workers: int | None = None
    shards: int | None = None
    shard_layout: str = "block"
    supervision: object | None = None
    checkpoint_every: int | None = None
    checkpoint_dir: str | None = None

    def with_nproc(self, nproc: int) -> "BackendConfig":
        """This config with a different machine width."""
        return replace(self, nproc=nproc)


__all__ = ["BackendConfig"]
