"""The persistent, content-addressed compile-artifact store.

The Engine's in-process LRU (:mod:`repro.runtime.engine`) dies with the
process, so every cold start re-pays compilation the cluster has
already done.  :class:`ArtifactStore` is the durable tier underneath
it: compiled artifacts — the *transformed* tree, its options and stage
timings — keyed by the same identity the in-memory cache uses (the
SHA-256 of the source text plus the normalized
:class:`~repro.runtime.engine.CompileOptions`), addressed on disk by a
single digest of that identity.

Layout (``repro.artifact/v1``)
------------------------------

Two-level shard directories keep any one directory small under
millions of entries::

    <root>/ab/cd/abcd01...ef.art

Each file is a one-line JSON header followed by a pickled payload::

    {"format": "repro.artifact/v1", "digest": ..., "source_sha": ...,
     "sha256": <payload digest>, "payload_bytes": N, ...}\n
    <pickled payload dict>

Writes reuse the :class:`~repro.reliability.checkpoint.CheckpointStore`
hygiene: payload and header go to a temporary name *in the shard
directory*, are fsynced, then published with ``os.replace`` — readers
never observe a half-written artifact, and two processes publishing
the same digest concurrently both succeed (last replace wins, the
bytes are identical anyway).  Reads verify ``payload_bytes`` and the
sha256 digest *before* unpickling, so truncated or bit-flipped entries
are reported as corruption (and evicted), never executed as pickles.

Eviction is LRU by mtime: every hit touches the file's mtime, and
:meth:`ArtifactStore.evict` (run after each save) removes
oldest-first until the store fits ``max_entries`` / ``max_bytes``.
Eviction racing a read is benign — the reader sees a miss and
recompiles.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile

#: On-disk format tag; bump on incompatible layout changes.
FORMAT = "repro.artifact/v1"

#: Artifact file suffix.
SUFFIX = ".art"


class ArtifactError(Exception):
    """An artifact file failed validation (truncated, corrupt, alien)."""


def artifact_digest(source_sha: str, options) -> str:
    """The store address of one (source, options) compile identity.

    Digests the same two components the in-memory cache keys on, in a
    canonical JSON form, so any process that can compute the in-memory
    key can address the shared store.
    """
    identity = {
        "format": FORMAT,
        "source_sha": str(source_sha),
        "options": dataclasses.asdict(options),
    }
    blob = json.dumps(identity, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def _suppress():
    return contextlib.suppress(OSError)


class ArtifactStore:
    """Crash-safe content-addressed artifact store on local disk.

    Args:
        root: Store directory (created on first save).
        max_entries: Entry-count ceiling for LRU eviction
            (None = unbounded).
        max_bytes: Total-size ceiling for LRU eviction
            (None = unbounded).
    """

    def __init__(
        self,
        root: str,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = str(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes

    # -- addressing ------------------------------------------------------------

    def path_for(self, digest: str) -> str:
        """Sharded file path of a digest: ``<root>/ab/cd/<digest>.art``."""
        digest = str(digest)
        if len(digest) < 4:
            raise ValueError(f"digest too short to shard: {digest!r}")
        return os.path.join(self.root, digest[:2], digest[2:4], digest + SUFFIX)

    # -- writing ---------------------------------------------------------------

    def save(self, digest: str, payload: dict, meta: dict | None = None) -> str:
        """Atomically publish ``payload`` under ``digest``; returns its path.

        Concurrent publishes of the same digest are safe: each writer
        builds its own temporary file and the final ``os.replace`` is
        atomic, so readers always see one complete artifact.
        """
        final = self.path_for(digest)
        directory = os.path.dirname(final)
        os.makedirs(directory, exist_ok=True)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": FORMAT,
            "digest": str(digest),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "payload_bytes": len(blob),
            **(meta or {}),
        }
        data = json.dumps(header, default=str).encode() + b"\n" + blob
        fd, tmp_path = tempfile.mkstemp(prefix=".tmp-art-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, final)
        except BaseException:
            with _suppress():
                os.unlink(tmp_path)
            raise
        self.evict()
        return final

    # -- reading ---------------------------------------------------------------

    def load(self, digest: str) -> dict | None:
        """The payload published under ``digest``, or None on miss.

        A corrupt entry (truncation, digest mismatch, foreign format)
        is unlinked and reported as a miss — the caller's cue to
        recompile and republish.  A hit refreshes the file's mtime so
        LRU eviction sees the access.
        """
        path = self.path_for(digest)
        try:
            payload = self.load_file(path)
        except FileNotFoundError:
            return None
        except ArtifactError:
            with _suppress():
                os.unlink(path)
            return None
        with _suppress():
            os.utime(path)
        return payload

    def load_file(self, path: str) -> dict:
        """Validate and load one artifact file; raises :class:`ArtifactError`.

        The header's byte length and sha256 digest are verified before
        the payload reaches the unpickler, so hostile bit-flips are
        rejected as corruption, not executed as pickles.
        """
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            raise
        except OSError as exc:
            raise ArtifactError(f"{path}: unreadable: {exc}") from exc
        newline = blob.find(b"\n")
        if newline < 0:
            raise ArtifactError(f"{path}: truncated header")
        try:
            header = json.loads(blob[:newline].decode())
        except (UnicodeDecodeError, ValueError) as exc:
            raise ArtifactError(f"{path}: malformed header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != FORMAT:
            raise ArtifactError(
                f"{path}: not a {FORMAT} file "
                f"(format={header.get('format') if isinstance(header, dict) else None!r})"
            )
        payload = blob[newline + 1:]
        expected = header.get("payload_bytes")
        if not isinstance(expected, int) or len(payload) != expected:
            raise ArtifactError(
                f"{path}: truncated payload "
                f"({len(payload)} bytes, header says {expected})"
            )
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            raise ArtifactError(f"{path}: digest mismatch (content corrupted)")
        try:
            obj = pickle.loads(payload)
        except Exception as exc:  # digest-valid yet unloadable payload
            raise ArtifactError(f"{path}: unloadable payload: {exc}") from exc
        if not isinstance(obj, dict):
            raise ArtifactError(
                f"{path}: payload is {type(obj).__name__}, not a dict"
            )
        return obj

    # -- eviction & housekeeping -----------------------------------------------

    def _entries(self) -> list[tuple[float, int, str]]:
        """Every artifact as ``(mtime, size, path)``, oldest first."""
        found: list[tuple[float, int, str]] = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return found
        for first in shards:
            level1 = os.path.join(self.root, first)
            try:
                seconds = os.listdir(level1)
            except OSError:
                continue
            for second in seconds:
                level2 = os.path.join(level1, second)
                try:
                    names = os.listdir(level2)
                except OSError:
                    continue
                for name in names:
                    if not name.endswith(SUFFIX):
                        continue
                    path = os.path.join(level2, name)
                    try:
                        stat = os.stat(path)
                    except OSError:
                        continue  # evicted by a racing process
                    found.append((stat.st_mtime, stat.st_size, path))
        found.sort()
        return found

    def evict(self) -> int:
        """Drop oldest-mtime artifacts until the limits hold; returns count.

        Unlink races with other evictors (or readers that just
        re-published) are ignored: the entry being gone is the goal.
        """
        if self.max_entries is None and self.max_bytes is None:
            return 0
        entries = self._entries()
        total = sum(size for _mtime, size, _path in entries)
        evicted = 0
        index = 0
        while index < len(entries) and (
            (self.max_entries is not None
             and len(entries) - index > self.max_entries)
            or (self.max_bytes is not None and total > self.max_bytes)
        ):
            _mtime, size, path = entries[index]
            with _suppress():
                os.unlink(path)
            total -= size
            evicted += 1
            index += 1
        return evicted

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        """Total payload+header bytes currently on disk."""
        return sum(size for _mtime, size, _path in self._entries())

    def digests(self) -> list[str]:
        """Digests currently published, LRU order (oldest first)."""
        return [
            os.path.basename(path)[: -len(SUFFIX)]
            for _mtime, _size, path in self._entries()
        ]

    def clear(self) -> None:
        """Drop every artifact (idempotent; shard dirs are retained)."""
        for _mtime, _size, path in self._entries():
            with _suppress():
                os.unlink(path)

    def stats(self) -> dict:
        """Entry count and byte total, for health/metrics endpoints."""
        entries = self._entries()
        return {
            "entries": len(entries),
            "bytes": sum(size for _mtime, size, _path in entries),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }


__all__ = ["FORMAT", "SUFFIX", "ArtifactError", "ArtifactStore", "artifact_digest"]
