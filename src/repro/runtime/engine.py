"""The compile-and-run engine: cached front end, autoselected backend.

The reproduction's pipeline — parse → structurize → flatten/simdize →
bytecode — is deterministic in the source text and the transform
options, yet every legacy entry point re-ran it per call.  The
:class:`Engine` memoizes it the way operator-caching DSL compilers do:

* :meth:`Engine.compile` returns a :class:`CompiledProgram` keyed by
  the SHA-256 of the source text plus the normalized transform
  options.  The cached artifacts (transformed AST, bytecode) are
  independent of ``nproc``, so one compile serves every machine width
  of a sweep.
* :meth:`CompiledProgram.run` executes with any backend:
  ``"auto"`` picks the bytecode VM when the routine compiles cleanly
  to the linear ISA and falls back to the tree-walking interpreter
  otherwise (trace hooks and named-routine runs always take the
  tree-walker, which supports them).  ``"scalar"`` and ``"mimd"``
  expose the sequential and per-processor execution levels.
* every run returns a :class:`~repro.runtime.result.RunResult` with
  the environment, counters, chosen backend, cache provenance, and
  wall/stage timings.

The VM and the interpreter are maintained in exact observational
agreement — identical final environments *and* identical
:class:`~repro.exec.counters.ExecutionCounters` — so backend choice
never changes what a cost model sees.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field

from ..lang import ast
from ..lang.errors import InterpreterError, MiniFError, TransformError
from ..lang.parser import parse_source
from ..lang.printer import format_source
from ..reliability import (
    Attempt,
    FallbackPolicy,
    ReliabilityError,
    check_agreement,
    crash_dump_for,
)
from ..transform.options import (
    normalize_layout,
    normalize_transform,
    normalize_variant,
)
from .config import BackendConfig
from .result import RunResult


@dataclass(frozen=True)
class CompileOptions:
    """Normalized, hashable transform options — the cache key's second half.

    Attributes:
        transform: ``"none"``, ``"flatten"``, ``"simdize"`` or
            ``"coalesce"`` (see :mod:`repro.transform.options`).
        variant: Flattening strength (``flatten`` only).
        simd: Derive the F90simd form of the flattened region.
        assume_min_trips: Caller-asserted paper condition 2.
        assume_parallel: Caller-asserted outer-loop parallelism
            (``spmd`` only — overrides the Section 6 dependence test).
        routine: Restrict the nest search to one routine.
        nest_index: Which nest (program order) to transform.
        layout: Data distribution (``simdize`` and ``spmd``).
        width: PE count baked into the SIMDized program text
            (``simdize`` and ``spmd``, required there — partitioned
            texts hard-code the machine width into the generated
            per-PE loop bounds).
    """

    transform: str = "none"
    variant: str = "auto"
    simd: bool = True
    assume_min_trips: bool = False
    assume_parallel: bool = False
    routine: str | None = None
    nest_index: int = 0
    layout: str = "block"
    width: int | None = None


@dataclass
class EngineStats:
    """Cache and dispatch counters for one :class:`Engine`.

    ``hits`` counts in-memory LRU hits; ``disk_hits`` counts artifacts
    served from the persistent :class:`~repro.runtime.store.ArtifactStore`
    tier (a disk hit skips the transform pipeline but still pays one
    load+unpickle); ``misses`` counts full compiles.
    """

    compiles: int = 0
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    store_saves: int = 0
    runs: Counter = field(default_factory=Counter)

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.disk_hits) / self.compiles if self.compiles else 0.0

    def snapshot(self) -> dict:
        return {
            "compiles": self.compiles,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "store_saves": self.store_saves,
            "runs": dict(self.runs),
        }


class CompiledProgram:
    """A cached, reusable compilation artifact.

    Holds the (already transformed) AST and lazily compiles it to
    bytecode on the first run that wants the VM.  Instances are owned
    by an :class:`Engine` cache; accessors hand out *clones* of the
    tree so caller-side mutation can never pollute the cache.
    """

    def __init__(
        self,
        engine: "Engine",
        key: tuple,
        tree: ast.SourceFile,
        options: CompileOptions,
        source_sha: str,
        stage_seconds: dict,
    ):
        self._engine = engine
        self.key = key
        self._tree = tree
        self.options = options
        self.source_sha = source_sha
        self.stage_seconds = stage_seconds
        self.cache_hit = False  # provenance of the *latest* compile() call
        self.cache_tier = "miss"  # "memory" | "disk" | "miss", same provenance
        self._lock = threading.Lock()
        self._bytecode = None
        self._bytecode_error: str | None = None
        self._bytecode_tried = False
        self._diagnostics = None

    @property
    def tree(self) -> ast.SourceFile:
        """A fresh clone of the compiled (transformed) program."""
        return ast.SourceFile([ast.clone(unit) for unit in self._tree.units])

    @property
    def bytecode_error(self) -> str | None:
        """Why the routine does not compile to bytecode (None if it does)."""
        self.bytecode()
        return self._bytecode_error

    def bytecode(self):
        """The routine's :class:`~repro.vm.isa.CodeObject`, or None.

        Compiled lazily on first use and cached — including the
        *failure*, so an uncompilable routine is diagnosed once.
        """
        with self._lock:
            if not self._bytecode_tried:
                from ..vm.compiler import compile_program

                start = time.perf_counter()
                try:
                    self._bytecode = compile_program(self._tree)
                except TransformError as error:
                    self._bytecode_error = str(error)
                self.stage_seconds["bytecode"] = time.perf_counter() - start
                self._bytecode_tried = True
        return self._bytecode

    def diagnostics(self):
        """Static findings for the program *as compiled*.

        Runs the lint rules (:mod:`repro.diag`) over every routine of
        the transformed tree and, when the routine lowers to bytecode,
        the bytecode verifier (:mod:`repro.vm.verify`) over the code
        object.  Computed lazily on first use and cached with the
        artifact, so a cache hit reuses the report.

        Returns:
            A :class:`~repro.diag.DiagnosticReport`.
        """
        if self._diagnostics is None:
            from ..diag import Diagnostic, DiagnosticReport, Severity, lint_routine
            from ..vm.verify import verify_code

            start = time.perf_counter()
            report = DiagnosticReport()
            for unit in self._tree.units:
                try:
                    report.extend(lint_routine(unit))
                except MiniFError as error:
                    # The linter must never make a valid program
                    # uncompilable; surface its own failure instead.
                    report.add(
                        Diagnostic(
                            "P003",
                            Severity.WARNING,
                            f"lint of routine '{unit.name}' failed: {error}",
                            location=error.location,
                            routine=unit.name,
                        )
                    )
            code = self.bytecode()
            if code is not None:
                report.extend(verify_code(code))
            report = report.sorted()
            with self._lock:
                if self._diagnostics is None:
                    self._diagnostics = report
                    self.stage_seconds["diagnostics"] = time.perf_counter() - start
        return self._diagnostics

    # -- backend selection ---------------------------------------------------

    _BACKEND_ALIASES = {
        "interp": "interpreter",
        "tree": "interpreter",
        "bytecode": "vm",
        "sequential": "scalar",
    }

    def _resolve_backend(
        self, backend: str, nproc: int, statement_hook, routine_name
    ) -> str:
        name = backend.strip().lower()
        name = self._BACKEND_ALIASES.get(name, name)
        if name not in ("auto", "vm", "interpreter", "scalar", "mimd", "pmimd"):
            raise InterpreterError(f"unknown backend {backend!r}")
        if name == "pmimd":
            if nproc < 1:
                raise InterpreterError(
                    f"backend='pmimd' needs nproc >= 1 (got {nproc})"
                )
            return name
        if name == "mimd":
            return name
        if not nproc:
            if name in ("vm", "interpreter"):
                raise InterpreterError(
                    f"backend={name!r} needs nproc >= 1 (got {nproc})"
                )
            return "scalar"
        if name == "scalar":
            raise InterpreterError("backend='scalar' runs with nproc=0")
        if name == "auto":
            # The VM supports neither trace hooks nor named-routine
            # entry; otherwise it runs whenever the routine lowers
            # cleanly to the linear ISA.
            if statement_hook is None and routine_name is None and self.bytecode():
                return "vm"
            return "interpreter"
        if name == "vm" and self.bytecode() is None:
            raise TransformError(
                f"backend='vm': routine does not compile to bytecode "
                f"({self._bytecode_error})"
            )
        return name

    # -- execution -----------------------------------------------------------

    def run(
        self,
        bindings: dict | None = None,
        *,
        nproc: int = 0,
        backend: str = "auto",
        externals: dict | None = None,
        statement_hook=None,
        routine_name: str | None = None,
        bindings_for=None,
        statement_hook_for=None,
        budget=None,
        fault_plan=None,
        policy: FallbackPolicy | None = None,
        verify: bool = False,
        config: BackendConfig | None = None,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_sink=None,
        resume_from=None,
    ) -> RunResult:
        """Execute the compiled program and return a :class:`RunResult`.

        Args:
            bindings: Initial environment (copied, never mutated).
            nproc: PE count; 0 runs the sequential execution level.
            backend: ``"auto"``, ``"vm"``, ``"interpreter"``,
                ``"scalar"``, ``"mimd"`` or ``"pmimd"`` (the
                process-parallel SPMD pool).  Ignored when ``policy``
                supplies its own chain.
            externals: External subroutine registry.
            statement_hook: Trace hook (tree-walking backends only).
            routine_name: Run a routine other than the main program
                (tree-walking backends only).
            bindings_for: MIMD/PMIMD backends — callable ``p -> dict``
                (runs inside the worker process on pmimd).  Plain
                ``bindings`` also work on both: every processor gets a
                private deep copy.
            statement_hook_for: MIMD backend — callable ``p -> hook``
                (not supported across pmimd's process boundary).
            budget: Execution guard (:class:`~repro.reliability.Budget`)
                applied to the run; runaway programs raise
                :class:`~repro.reliability.BudgetExceeded`.
            fault_plan: Deterministic fault injection
                (:class:`~repro.reliability.FaultPlan`) for chaos
                testing the run.
            policy: A :class:`~repro.reliability.FallbackPolicy`; when
                given, faults retry and degrade along its backend chain
                and every attempt is recorded in
                :attr:`RunResult.attempts`.
            verify: Differentially check the run: after the primary
                backend succeeds, the other lockstep backend also runs
                and the two must agree on env and counters
                (:func:`~repro.reliability.check_agreement` — the same
                oracle :mod:`repro.fuzz` uses).  Needs ``nproc >= 1``
                and a vm/interpreter/auto backend; composes with
                ``policy`` by switching its ``verify`` flag on.
            config: A :class:`BackendConfig` supplying run settings in
                one bag; explicit keyword arguments win over it, and
                its ``counters``/``max_instructions``/``vm_fuse``
                fields reach the backend constructors unchanged.
            checkpoint_every: Durable execution — capture a restorable
                :class:`~repro.reliability.checkpoint.Checkpoint`
                every this many executed steps (vm/scalar: delivered
                to ``checkpoint_sink`` or saved under ``checkpoint_dir``;
                pmimd: workers checkpoint per processor so shard
                replays resume instead of rerunning).
            checkpoint_dir: On-disk
                :class:`~repro.reliability.checkpoint.CheckpointStore`
                root.  vm/scalar captures are saved under the key
                ``"run"`` stamped with this program's source SHA.
            checkpoint_sink: Callable receiving each captured
                checkpoint (vm/scalar; wins over ``checkpoint_dir``).
            resume_from: A checkpoint to continue from instead of
                starting at step 0.  The backend is chosen from the
                checkpoint (vm or scalar), the final env/counters are
                bit-identical to an uninterrupted run, and a
                source-SHA mismatch is refused.  Incompatible with
                ``policy`` chains.
        """
        if config is not None:
            nproc = nproc if nproc else config.nproc
            externals = externals if externals is not None else config.externals
            budget = budget if budget is not None else config.budget
            fault_plan = fault_plan if fault_plan is not None else config.fault_plan
            if checkpoint_every is None:
                checkpoint_every = config.checkpoint_every
            if checkpoint_dir is None:
                checkpoint_dir = config.checkpoint_dir
        if verify:
            if policy is not None:
                if not policy.verify:
                    import dataclasses

                    policy = dataclasses.replace(policy, verify=True)
            else:
                name = backend.strip().lower()
                name = self._BACKEND_ALIASES.get(name, name)
                if nproc < 1 or name in ("scalar", "mimd", "pmimd"):
                    raise InterpreterError(
                        "verify=True cross-checks the lockstep backends; "
                        "it needs nproc >= 1 and backend "
                        "'auto'/'vm'/'interpreter'"
                    )
                chain = (
                    ("interpreter", "vm")
                    if name == "interpreter"
                    else ("vm", "interpreter")
                )
                policy = FallbackPolicy(chain=chain, retries=0, verify=True)
        if policy is not None and (resume_from is not None or checkpoint_sink is not None):
            raise InterpreterError(
                "resume_from/checkpoint_sink cannot be combined with a "
                "FallbackPolicy chain: a resumed run must continue the one "
                "backend recorded in the checkpoint"
            )
        if resume_from is not None:
            meta = getattr(resume_from, "meta", None)
            sha = meta.get("source_sha") if isinstance(meta, dict) else None
            if sha is not None and sha != self.source_sha:
                raise InterpreterError(
                    "resume_from checkpoint was captured from a different "
                    "program (source SHA mismatch)"
                )
            chosen = "vm" if resume_from.backend == "vm" else "scalar"
            name = backend.strip().lower()
            name = self._BACKEND_ALIASES.get(name, name)
            if name not in ("auto", chosen):
                raise InterpreterError(
                    f"resume_from checkpoint was captured by the '{chosen}' "
                    f"backend; requested backend '{backend}' cannot "
                    f"continue it"
                )
            if chosen == "vm" and not nproc:
                nproc = resume_from.nproc
        kwargs = dict(
            bindings=bindings,
            nproc=nproc,
            externals=externals,
            statement_hook=statement_hook,
            routine_name=routine_name,
            bindings_for=bindings_for,
            statement_hook_for=statement_hook_for,
            budget=budget,
            fault_plan=fault_plan,
            config=config,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            checkpoint_sink=checkpoint_sink,
            resume_from=resume_from,
        )
        if policy is not None:
            return self._run_with_policy(policy, **kwargs)
        if resume_from is None:
            chosen = self._resolve_backend(backend, nproc, statement_hook, routine_name)
        if (
            checkpoint_every
            and checkpoint_dir
            and checkpoint_sink is None
            and chosen in ("vm", "scalar")
        ):
            # Durable execution by default: captures land in an on-disk
            # store under one well-known key, stamped with the program
            # identity so a later --resume refuses a source mismatch.
            from ..reliability.checkpoint import CheckpointStore

            store = CheckpointStore(checkpoint_dir)

            def checkpoint_sink(ckpt, _store=store, _sha=self.source_sha):
                ckpt.meta["source_sha"] = _sha
                _store.save("run", ckpt)

            kwargs["checkpoint_sink"] = checkpoint_sink
        start = time.perf_counter()
        env, counters, statements, events = self._execute(chosen, **kwargs)
        wall = time.perf_counter() - start
        return self._result(
            chosen,
            nproc,
            env,
            counters,
            statements,
            wall,
            events=events,
            resumed_from_step=None if resume_from is None else resume_from.step,
        )

    def _execute(
        self,
        chosen: str,
        *,
        bindings,
        nproc,
        externals,
        statement_hook,
        routine_name,
        bindings_for,
        statement_hook_for,
        budget,
        fault_plan,
        config=None,
        checkpoint_every=None,
        checkpoint_dir=None,
        checkpoint_sink=None,
        resume_from=None,
    ):
        """Run one already-resolved backend.

        Returns ``(env, counters, statements, events)`` — ``events``
        is the supervision log for the pmimd backend and empty for the
        single-process ones.  Backend construction is uniform: the
        resolved run settings are folded into one
        :class:`BackendConfig` and each backend is built via its
        ``from_config`` classmethod.
        """
        import dataclasses

        if config is None:
            config = BackendConfig(
                nproc=nproc,
                externals=externals,
                budget=budget,
                fault_plan=fault_plan,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
            )
        else:
            # Explicit run() kwargs already won the merge; refold them
            # so counters/max_instructions/vm_fuse survive from the
            # caller's config.
            config = dataclasses.replace(
                config,
                nproc=nproc,
                externals=externals,
                budget=budget,
                fault_plan=fault_plan,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
            )
        if chosen == "vm":
            from ..vm.machine import SIMDVirtualMachine

            vm = SIMDVirtualMachine.from_config(config)
            vm.checkpoint_sink = checkpoint_sink
            raw = vm.run(
                self.bytecode(),
                bindings=dict(bindings or {}),
                resume_from=resume_from,
            )
            env = {k: v for k, v in raw.items() if not k.startswith("__")}
            return env, vm.counters, vm.executed, []
        if chosen == "interpreter":
            from ..exec.simd import SIMDInterpreter

            if resume_from is not None or checkpoint_sink is not None:
                raise InterpreterError(
                    "the lockstep tree-walker does not support checkpoint "
                    "capture/resume; use backend='vm' or 'scalar'"
                )
            interp = SIMDInterpreter.from_config(self._tree, config)
            interp.statement_hook = statement_hook
            env = interp.run(routine_name=routine_name, bindings=bindings)
            return env, interp.counters, interp.executed_statements, []
        if chosen == "scalar":
            from ..exec.scalar import ScalarInterpreter

            interp = ScalarInterpreter.from_config(self._tree, config)
            interp.statement_hook = statement_hook
            interp.checkpoint_sink = checkpoint_sink
            env = interp.run(
                routine_name=routine_name,
                bindings=bindings,
                resume_from=resume_from,
            )
            return env, interp.counters, interp.executed_statements, []
        if chosen == "pmimd":
            from ..exec.pmimd import PMIMDExecutor

            if statement_hook_for is not None:
                raise InterpreterError(
                    "backend='pmimd' cannot install statement hooks across "
                    "process boundaries; use backend='mimd'"
                )
            if checkpoint_sink is not None:
                raise InterpreterError(
                    "backend='pmimd' cannot deliver checkpoints to an "
                    "in-process sink; set checkpoint_dir so workers save "
                    "per-processor checkpoints to the on-disk store"
                )
            if resume_from is not None:
                raise InterpreterError(
                    "backend='pmimd' resumes from its per-processor "
                    "checkpoint store automatically; resume_from takes a "
                    "single vm/scalar checkpoint"
                )
            executor = PMIMDExecutor.from_config(self._tree, config)
            res = executor.run(
                bindings=dict(bindings) if bindings else None,
                bindings_for=bindings_for,
                routine_name=routine_name,
            )
            return res.envs, res.counters, res.statements, res.events
        # mimd
        from ..exec.mimd import MIMDSimulator

        if bindings_for is None and bindings:
            # A pmimd-style plain-bindings run degrading to mimd:
            # every processor gets a private deep copy, matching the
            # worker-side replication.
            from ..exec.pmimd import replicate_bindings

            base = dict(bindings)
            bindings_for = lambda p: replicate_bindings(base)  # noqa: E731
        sim = MIMDSimulator.from_config(self._tree, config)
        mimd = sim.run(
            bindings_for=bindings_for,
            routine_name=routine_name,
            statement_hook_for=statement_hook_for,
        )
        return mimd.envs, mimd.counters, mimd.statements, []

    def _result(
        self,
        chosen,
        nproc,
        env,
        counters,
        statements,
        wall,
        attempts=None,
        events=None,
        resumed_from_step=None,
    ) -> RunResult:
        self._engine.stats.runs[chosen] += 1
        if isinstance(counters, list):
            # MIMD: parallel completion time — max over processors.
            steps = max((c.total_steps for c in counters), default=0)
        else:
            steps = int(counters.total_steps)
        return RunResult(
            env=env,
            counters=counters,
            backend=chosen,
            nproc=nproc,
            cache_hit=self.cache_hit,
            wall_seconds=wall,
            steps=steps,
            stage_seconds={**self.stage_seconds, "run": wall},
            statements=statements,
            attempts=attempts if attempts is not None else [],
            events=events if events is not None else [],
            resumed_from_step=resumed_from_step,
        )

    def _run_with_policy(self, policy: FallbackPolicy, **kwargs) -> RunResult:
        """Try the policy's backend chain, recording every attempt.

        Semantics:

        * A backend that will not even resolve for this program/run
          shape (e.g. ``"vm"`` when the routine has no bytecode form)
          records one failed attempt and the chain degrades.
        * A *retryable* :class:`~repro.reliability.ReliabilityError`
          (transient backend faults) retries the same backend up to
          ``policy.retries`` more times, then degrades.
        * A non-retryable fault — budget exhaustion, divergence, bounds
          violations, genuine program errors — raises immediately with
          the attempt log attached as ``error.attempts``: deterministic
          failures would only re-fail downstream.
        * With ``policy.verify`` the rest of the chain runs after a
          success and must agree on env + counters.
        """
        nproc = kwargs["nproc"]
        attempts: list[Attempt] = []
        last_error: Exception | None = None
        for backend in policy.chain:
            try:
                chosen = self._resolve_backend(
                    backend,
                    nproc,
                    kwargs["statement_hook"],
                    kwargs["routine_name"],
                )
            except MiniFError as error:
                attempts.append(
                    Attempt(
                        backend=backend,
                        ok=False,
                        error=f"{type(error).__name__}: {error}",
                        fault_kind=type(error).__name__,
                        crash_dump=crash_dump_for(error),
                    )
                )
                last_error = error
                continue
            for _try in range(1 + policy.retries):
                start = time.perf_counter()
                try:
                    env, counters, statements, events = self._execute(
                        chosen, **kwargs
                    )
                except ReliabilityError as error:
                    wall = time.perf_counter() - start
                    snapshot = error.snapshot
                    dump = error.crash_dump()
                    supervision = getattr(error, "supervision_events", None)
                    if supervision is not None:
                        dump["supervision_events"] = supervision
                    attempts.append(
                        Attempt(
                            backend=chosen,
                            ok=False,
                            wall_seconds=wall,
                            steps=None if snapshot is None else snapshot.steps,
                            error=f"{type(error).__name__}: {error}",
                            fault_kind=type(error).__name__,
                            crash_dump=dump,
                        )
                    )
                    last_error = error
                    if not policy.is_retryable(error):
                        error.attempts = attempts
                        raise
                    continue
                wall = time.perf_counter() - start
                attempts.append(
                    Attempt(
                        backend=chosen, ok=True, wall_seconds=wall, steps=statements
                    )
                )
                if policy.verify:
                    self._verify_rest(policy, chosen, env, counters, attempts, kwargs)
                return self._result(
                    chosen,
                    nproc,
                    env,
                    counters,
                    statements,
                    wall,
                    attempts,
                    events=events,
                )
        if last_error is not None:
            last_error.attempts = attempts
            raise last_error
        raise InterpreterError(
            f"fallback chain {policy.chain!r} resolved no backend"
        )

    def _verify_rest(self, policy, chosen, env, counters, attempts, kwargs) -> None:
        """Differential check: run the rest of the chain, demand agreement."""
        seen = {chosen}
        for other in policy.chain:
            try:
                resolved = self._resolve_backend(
                    other,
                    kwargs["nproc"],
                    kwargs["statement_hook"],
                    kwargs["routine_name"],
                )
            except MiniFError:
                continue
            if resolved in seen:
                continue
            seen.add(resolved)
            start = time.perf_counter()
            try:
                env_b, counters_b, statements_b, _events_b = self._execute(
                    resolved, **kwargs
                )
            except ReliabilityError as error:
                attempts.append(
                    Attempt(
                        backend=resolved,
                        ok=False,
                        wall_seconds=time.perf_counter() - start,
                        error=f"{type(error).__name__}: {error}",
                        fault_kind=type(error).__name__,
                        crash_dump=error.crash_dump(),
                    )
                )
                continue
            attempts.append(
                Attempt(
                    backend=resolved,
                    ok=True,
                    wall_seconds=time.perf_counter() - start,
                    steps=statements_b,
                )
            )
            check_agreement(
                env, counters, env_b, counters_b, backends=(chosen, resolved)
            )


class Engine:
    """Compiles MiniF programs once and runs them many times.

    Caching is two-tier: an in-process LRU of live
    :class:`CompiledProgram` objects, optionally backed by a persistent
    on-disk :class:`~repro.runtime.store.ArtifactStore` shared between
    processes (and, behind ``repro serve``, between cluster restarts).
    A memory miss falls through to the store before the transform
    pipeline runs; a full compile publishes its artifact back.

    Args:
        cache_size: Maximum number of distinct (source, options)
            artifacts to retain in memory (LRU eviction).
        store: A ready :class:`~repro.runtime.store.ArtifactStore`
            to use as the persistent tier (wins over ``store_dir``).
        store_dir: Convenience — build an
            :class:`~repro.runtime.store.ArtifactStore` rooted here.
    """

    def __init__(
        self,
        cache_size: int = 128,
        *,
        store=None,
        store_dir: str | None = None,
    ):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.cache_size = cache_size
        if store is None and store_dir is not None:
            from .store import ArtifactStore

            store = ArtifactStore(store_dir)
        self.store = store
        self.stats = EngineStats()
        self._cache: OrderedDict[tuple, CompiledProgram] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop every cached artifact (stats are retained)."""
        with self._lock:
            self._cache.clear()

    def compile(
        self,
        source: ast.SourceFile | str,
        *,
        transform: str | None = None,
        variant: str = "auto",
        simd: bool = True,
        assume_min_trips: bool = False,
        assume_parallel: bool = False,
        routine: str | None = None,
        nest_index: int = 0,
        layout: str = "block",
        width: int | None = None,
        strict: bool = False,
    ) -> CompiledProgram:
        """Compile (or fetch) the program for the given options.

        Args:
            source: MiniF source text or an already-parsed tree.  A
                tree is keyed by its canonical printed form, so
                equivalent trees share one cache entry and the caller
                keeps ownership of its own AST.
            transform: Nest transform to apply — ``"none"`` (default),
                ``"flatten"``, ``"simdize"``, ``"coalesce"`` or
                ``"spmd"``; legacy spellings are accepted with a
                DeprecationWarning.
            variant: Flattening strength for ``transform="flatten"``.
            simd: Derive the F90simd form when flattening.
            assume_min_trips: Paper condition 2 assertion.
            assume_parallel: Outer-loop parallelism assertion
                (``transform="spmd"`` only).
            routine: Restrict the nest search to this routine.
            nest_index: Which nest (program order) to transform.
            layout: Data distribution for ``transform="simdize"``.
            width: PE count baked into the SIMDized text
                (``transform="simdize"`` only, required there).
            strict: Fail the compile when static analysis finds
                error-severity diagnostics — raises
                :class:`~repro.lang.errors.CompileError` carrying the
                findings.  Not part of the cache key: the same
                artifact serves strict and lax callers, the check runs
                against its (cached) diagnostics report.

        Returns:
            A cached :class:`CompiledProgram`; its ``cache_hit``
            attribute tells whether this call was served from cache and
            ``cache_tier`` which tier served it
            (``"memory"``/``"disk"``/``"miss"``).
        """
        text, sha, options = self._normalize(
            source,
            transform=transform,
            variant=variant,
            simd=simd,
            assume_min_trips=assume_min_trips,
            assume_parallel=assume_parallel,
            routine=routine,
            nest_index=nest_index,
            layout=layout,
            width=width,
        )
        key = (sha, options)
        with self._lock:
            self.stats.compiles += 1
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.hits += 1
                self._cache.move_to_end(key)
                cached.cache_hit = True
                cached.cache_tier = "memory"
                return self._checked(cached, strict)
        program = self._load_from_store(sha, key, options)
        tier = "disk"
        if program is None:
            tier = "miss"
            with self._lock:
                self.stats.misses += 1
            program = self._build(text, sha, key, options)
            self._publish(sha, options, program)
        with self._lock:
            # a racing compile may have inserted the same key; keep the
            # first artifact so callers share one entry
            winner = self._cache.setdefault(key, program)
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        winner.cache_hit = winner is not program or tier == "disk"
        winner.cache_tier = "memory" if winner is not program else tier
        return self._checked(winner, strict)

    def _normalize(
        self,
        source: ast.SourceFile | str,
        *,
        transform=None,
        variant="auto",
        simd=True,
        assume_min_trips=False,
        assume_parallel=False,
        routine=None,
        nest_index=0,
        layout="block",
        width=None,
    ) -> tuple[str, str, CompileOptions]:
        """``(text, source SHA, normalized options)`` of a compile request."""
        options = CompileOptions(
            transform=normalize_transform(transform),
            variant=normalize_variant(variant),
            simd=bool(simd),
            assume_min_trips=bool(assume_min_trips),
            assume_parallel=bool(assume_parallel),
            routine=routine,
            nest_index=int(nest_index),
            layout=normalize_layout(layout),
            width=None if width is None else int(width),
        )
        if isinstance(source, str):
            text = source
        elif isinstance(source, ast.SourceFile):
            text = format_source(source)
        else:
            raise TypeError(
                f"source must be MiniF text or a SourceFile, "
                f"got {type(source).__name__}"
            )
        sha = hashlib.sha256(text.encode()).hexdigest()
        return text, sha, options

    def cache_key(self, source: ast.SourceFile | str, **options) -> str:
        """The store digest of a compile request, without compiling.

        The same identity :meth:`compile` caches under — usable as a
        deduplication key (``repro.serve`` single-flights identical
        in-flight compiles on it) and as the
        :class:`~repro.runtime.store.ArtifactStore` address.
        """
        from .store import artifact_digest

        _text, sha, normalized = self._normalize(source, **options)
        return artifact_digest(sha, normalized)

    def _load_from_store(self, sha, key, options) -> "CompiledProgram | None":
        """Persistent-tier lookup: rebuild a CompiledProgram from disk."""
        if self.store is None:
            return None
        from .store import artifact_digest

        start = time.perf_counter()
        payload = self.store.load(artifact_digest(sha, options))
        if (
            payload is None
            or payload.get("source_sha") != sha
            or payload.get("options") != options
            or not isinstance(payload.get("tree"), ast.SourceFile)
        ):
            # A digest collision or a doctored entry surfaces as an
            # identity mismatch: treat as a miss, never trust the tree.
            with self._lock:
                self.stats.disk_misses += 1
            return None
        stage_seconds = dict(payload.get("stage_seconds") or {})
        stage_seconds["store_load"] = time.perf_counter() - start
        with self._lock:
            self.stats.disk_hits += 1
        return CompiledProgram(
            self, key, payload["tree"], options, sha, stage_seconds
        )

    def _publish(self, sha, options, program: "CompiledProgram") -> None:
        """Publish a freshly-built artifact to the persistent tier.

        Publish failures (full disk, permissions) never fail the
        compile — the in-memory artifact is already usable.
        """
        if self.store is None:
            return
        from .store import artifact_digest

        payload = {
            "source_sha": sha,
            "options": options,
            "tree": program._tree,
            "stage_seconds": {
                name: seconds
                for name, seconds in program.stage_seconds.items()
                if name in ("parse", "transform")
            },
        }
        try:
            self.store.save(
                artifact_digest(sha, options),
                payload,
                meta={"source_sha": sha, "transform": options.transform},
            )
        except (OSError, pickle.PicklingError):
            return
        with self._lock:
            self.stats.store_saves += 1

    @staticmethod
    def _checked(program: CompiledProgram, strict: bool) -> CompiledProgram:
        """Apply the strict-mode gate to a (possibly cached) artifact."""
        if not strict:
            return program
        report = program.diagnostics()
        if report.has_errors:
            from ..lang.errors import CompileError

            first = report.errors[0]
            raise CompileError(
                f"strict compile failed: {report.summary()}; first: "
                f"[{first.code}] {first.message}",
                diagnostics=report.errors,
                location=first.location,
            )
        return program

    def run(
        self,
        source: ast.SourceFile | str,
        bindings: dict | None = None,
        *,
        transform: str | None = None,
        variant: str = "auto",
        simd: bool = True,
        assume_min_trips: bool = False,
        assume_parallel: bool = False,
        routine: str | None = None,
        nest_index: int = 0,
        layout: str = "block",
        width: int | None = None,
        strict: bool = False,
        **run_kwargs,
    ) -> RunResult:
        """Compile (cached) and run in one call.

        Compile keywords are those of :meth:`compile` (including
        ``strict``); everything else (``nproc``, ``backend``,
        ``externals``, ``budget``, ``fault_plan``, ``policy``, ...) is
        forwarded to :meth:`CompiledProgram.run`.
        """
        program = self.compile(
            source,
            transform=transform,
            variant=variant,
            simd=simd,
            assume_min_trips=assume_min_trips,
            assume_parallel=assume_parallel,
            routine=routine,
            nest_index=nest_index,
            layout=layout,
            width=width,
            strict=strict,
        )
        return program.run(bindings, **run_kwargs)

    def _build(
        self, text: str, sha: str, key: tuple, options: CompileOptions
    ) -> CompiledProgram:
        from ..transform.pipeline import (
            _flatten_program_uncached,
            coalesce_program,
            fission_program,
            interchange_program,
            naive_simd_program,
            spmd_program,
        )

        stage_seconds: dict = {}
        start = time.perf_counter()
        tree = parse_source(text)
        stage_seconds["parse"] = time.perf_counter() - start

        start = time.perf_counter()
        if options.transform == "flatten":
            tree = _flatten_program_uncached(
                tree,
                variant=options.variant,
                assume_min_trips=options.assume_min_trips,
                simd=options.simd,
                routine=options.routine,
                nest_index=options.nest_index,
            )
        elif options.transform == "simdize":
            if options.width is None:
                raise TransformError("transform='simdize' needs width=<PE count>")
            tree = naive_simd_program(
                tree,
                options.width,
                layout=options.layout,
                routine=options.routine,
                nest_index=options.nest_index,
            )
        elif options.transform == "spmd":
            if options.width is None:
                raise TransformError("transform='spmd' needs width=<PE count>")
            tree = spmd_program(
                tree,
                options.width,
                layout=options.layout,
                variant=options.variant,
                assume_min_trips=options.assume_min_trips,
                assume_parallel=options.assume_parallel,
                simd=options.simd,
                routine=options.routine,
                nest_index=options.nest_index,
            )
        elif options.transform == "coalesce":
            tree = coalesce_program(
                tree, routine=options.routine, nest_index=options.nest_index
            )
        elif options.transform == "fission":
            tree = fission_program(
                tree, routine=options.routine, nest_index=options.nest_index
            )
        elif options.transform == "interchange":
            tree = interchange_program(
                tree, routine=options.routine, nest_index=options.nest_index
            )
        stage_seconds["transform"] = time.perf_counter() - start
        return CompiledProgram(self, key, tree, options, sha, stage_seconds)


_default_engine: Engine | None = None
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide shared Engine behind the legacy free functions."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = Engine()
        return _default_engine


def reset_default_engine() -> None:
    """Replace the shared Engine with a fresh one (tests, benchmarks)."""
    global _default_engine
    with _default_lock:
        _default_engine = None
