"""Structured results for Engine-driven runs.

Every execution backend (scalar tree-walker, SIMD tree-walker,
bytecode VM, MIMD simulator) historically returned its own shape —
``(env, counters)`` tuples here, a :class:`~repro.exec.mimd.MIMDResult`
there.  :class:`RunResult` unifies them: one dataclass carrying the
final environment, the :class:`~repro.exec.counters.ExecutionCounters`,
and the provenance of the run (backend used, cache hit/miss, wall
time, per-stage timings).

For backward compatibility a :class:`RunResult` *unpacks* like the
legacy two-tuple::

    env, counters = program.run(bindings, nproc=8)

and, when produced by the MIMD backend (where ``env`` and ``counters``
hold per-processor lists), it answers the :class:`MIMDResult`
aggregate queries (``envs``, ``time_steps``, ``call_counts``,
``time_calls``) unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunResult:
    """Outcome of one :meth:`CompiledProgram.run`.

    Attributes:
        env: Final environment — a dict, or a per-processor list of
            dicts for the MIMD backend.
        counters: Execution counters — one accumulator, or a
            per-processor list for the MIMD backend.
        backend: Backend that actually ran (``"vm"``,
            ``"interpreter"``, ``"scalar"``, ``"mimd"``).
        nproc: PE/processor count of the run (0 = sequential).
        cache_hit: Whether the compiled artifact came from the
            Engine's cache rather than a fresh compile.
        wall_seconds: End-to-end execution wall time.
        steps: Lockstep step count of the run
            (``counters.total_steps``; for MIMD the parallel
            completion time, i.e. the max over processors).  Together
            with ``wall_seconds`` this is what the benchmark
            trajectory (``repro bench``) records per cell.
        stage_seconds: Per-stage timings (``parse``, ``transform``,
            ``bytecode`` from the compile that produced the artifact,
            plus ``run``).
        statements: Backend work metric — statements executed by the
            tree-walkers, instructions retired by the VM, or a
            per-processor statement list for MIMD.
        attempts: Execution attempts made under a
            :class:`~repro.reliability.FallbackPolicy`, in order
            (empty for plain single-backend runs).  Each is an
            :class:`~repro.reliability.Attempt`; failed ones carry a
            crash dump.
        events: Supervision event log of the run — recovery decisions
            (dispatch, worker-dead, retry, speculate, ...) recorded by
            the pmimd backend's
            :class:`~repro.reliability.supervisor.WorkerSupervisor`;
            empty for single-process backends.
        resumed_from_step: When the run continued from a
            :class:`~repro.reliability.checkpoint.Checkpoint`, the
            step it resumed at; None for runs started from step 0.
    """

    env: object
    counters: object
    backend: str
    nproc: int
    cache_hit: bool = False
    wall_seconds: float = 0.0
    steps: int = 0
    stage_seconds: dict = field(default_factory=dict)
    statements: object = None
    attempts: list = field(default_factory=list)
    events: list = field(default_factory=list)
    resumed_from_step: int | None = None

    # -- legacy (env, counters) tuple protocol ------------------------------

    def __iter__(self):
        yield self.env
        yield self.counters

    def __len__(self) -> int:
        return 2

    def __getitem__(self, index):
        return (self.env, self.counters)[index]

    # -- MIMD aggregate queries (mirror MIMDResult) -------------------------

    @property
    def envs(self) -> list:
        """Per-processor environments (MIMD); ``[env]`` otherwise."""
        return self.env if isinstance(self.env, list) else [self.env]

    def _counter_list(self) -> list:
        return self.counters if isinstance(self.counters, list) else [self.counters]

    def time_steps(self, kind: str | None = None) -> int:
        """Parallel completion time: max over processors (Eq. 1)."""
        counters = self._counter_list()
        if kind is None:
            return max((c.total_steps for c in counters), default=0)
        return max((c.layer_steps.get(kind, 0) for c in counters), default=0)

    def call_counts(self, name: str) -> list[int]:
        """Per-processor number of calls to an external routine."""
        return [c.calls.get(name, 0) for c in self._counter_list()]

    def time_calls(self, name: str) -> int:
        """Parallel time measured in calls to ``name``."""
        return max(self.call_counts(name), default=0)
