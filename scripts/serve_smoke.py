#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` — the CI ``serve-smoke`` job.

Stdlib only (urllib + subprocess), so it runs anywhere the package
does.  The script proves the service's cold→warm story end to end:

1. boot a server against a temporary artifact store;
2. ``POST /v1/compile`` a Table-1 kernel (NBFORCE, flattened) — a cold
   compile, ``cache == "miss"``;
3. ``POST /v1/run`` a program and check the environment came back;
4. re-``POST`` the same compile — ``cache == "memory"``;
5. ``GET /healthz`` and ``GET /metrics`` respond and agree;
6. SIGTERM the server and assert a clean (exit 0) shutdown;
7. boot a **fresh** server process on the same store and re-``POST``
   the same compile: it must be served from disk (``cache == "disk"``,
   ``engine.disk_hits >= 1`` in ``/metrics``) — the transform pipeline
   never ran in this process;
8. SIGTERM again, assert clean shutdown again.

Exit status is nonzero on the first failed assertion, with the server's
output echoed for debugging.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

BOOT_TIMEOUT = 30.0
SHUTDOWN_TIMEOUT = 15.0

NBFORCE_BINDINGS = None  # compile-only for the Table-1 kernel

EXAMPLE_RUN = {
    "nproc": 4,
    "bindings": {"n": 4},
}


def _read_kernels() -> tuple[str, str]:
    """(Table-1 NBFORCE kernel, small EXAMPLE program) MiniF sources."""
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.kernels.example import P1_SEQUENTIAL
    from repro.kernels.nbforce import NBFORCE_SEQUENTIAL

    return NBFORCE_SEQUENTIAL, P1_SEQUENTIAL


class Server:
    """One ``repro serve`` subprocess with captured output."""

    def __init__(self, store_dir: str):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--store-dir",
                store_dir,
                "--max-inflight",
                "16",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines: list[str] = []
        self.port = self._await_ready()
        self._drain = threading.Thread(target=self._pump, daemon=True)
        self._drain.start()

    def _await_ready(self) -> int:
        deadline = time.monotonic() + BOOT_TIMEOUT
        pattern = re.compile(r"listening on http://[\w.]+:(\d+)")
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(
                    "server exited before becoming ready:\n" + "".join(self.lines)
                )
            self.lines.append(line)
            match = pattern.search(line)
            if match:
                return int(match.group(1))
        raise AssertionError("server did not become ready in time")

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line)

    def stop(self) -> None:
        """SIGTERM; assert clean exit and the shutdown banner."""
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=SHUTDOWN_TIMEOUT)
        self._drain.join(timeout=5)
        output = "".join(self.lines)
        assert code == 0, f"server exited {code}, not 0:\n{output}"
        assert "shutdown complete" in output, (
            f"no clean-shutdown banner in output:\n{output}"
        )

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=5)


def api(port: int, method: str, path: str, body: dict | None = None) -> dict:
    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode())


def main() -> int:
    nbforce, example = _read_kernels()
    compile_body = {"source": nbforce, "transform": "flatten"}
    store_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")

    print("phase 1: cold server", flush=True)
    server = Server(store_dir)
    try:
        cold = api(server.port, "POST", "/v1/compile", compile_body)
        assert cold["cache"] == "miss", f"expected cold miss, got {cold['cache']}"
        print(f"  compile: {cold['cache']} key={cold['key'][:12]}", flush=True)

        ran = api(
            server.port, "POST", "/v1/run", {"source": example, **EXAMPLE_RUN}
        )
        assert ran["backend"] in ("vm", "interpreter"), ran["backend"]
        assert "env" in ran and ran["steps"] > 0, ran
        print(f"  run: backend={ran['backend']} steps={ran['steps']}", flush=True)

        warm = api(server.port, "POST", "/v1/compile", compile_body)
        assert warm["cache"] == "memory", f"expected memory hit, got {warm['cache']}"
        print(f"  re-compile: {warm['cache']}", flush=True)

        health = api(server.port, "GET", "/healthz")
        assert health["ok"] is True and health["store"]["entries"] >= 1, health
        metrics = api(server.port, "GET", "/metrics")
        assert metrics["cache_hits"].get("miss", 0) >= 1, metrics["cache_hits"]
        assert metrics["cache_hits"].get("memory", 0) >= 1, metrics["cache_hits"]
        assert metrics["engine"]["store_saves"] >= 1, metrics["engine"]
        print(f"  healthz/metrics ok: {metrics['cache_hits']}", flush=True)
    except BaseException:
        server.kill()
        print("".join(server.lines), file=sys.stderr)
        raise
    server.stop()
    print("  clean shutdown ok", flush=True)

    print("phase 2: fresh server, same store (warm-path proof)", flush=True)
    server = Server(store_dir)
    try:
        disk = api(server.port, "POST", "/v1/compile", compile_body)
        assert disk["cache"] == "disk", (
            f"expected a disk hit from the shared store, got {disk['cache']}"
        )
        metrics = api(server.port, "GET", "/metrics")
        assert metrics["cache_hits"].get("disk", 0) >= 1, metrics["cache_hits"]
        assert metrics["engine"]["disk_hits"] >= 1, metrics["engine"]
        assert metrics["engine"]["misses"] == 0, (
            f"fresh process recompiled instead of loading: {metrics['engine']}"
        )
        print(f"  compile: {disk['cache']} (engine: {metrics['engine']})", flush=True)
    except BaseException:
        server.kill()
        print("".join(server.lines), file=sys.stderr)
        raise
    server.stop()
    print("  clean shutdown ok", flush=True)

    print("serve smoke: all assertions passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
